//! The pull-based streaming FLWOR pipeline.
//!
//! Realizes the paper's §3.1 tuple stream as a Volcano-style operator
//! pipeline (the architecture VXQuery showed is what makes an XQuery
//! engine scale) instead of materializing a `Vec<Tuple>` snapshot after
//! every clause:
//!
//! - [`TupleSource`] is the pull interface. Operators exchange *batches*
//!   of tuples ([`BATCH`] at a time) to amortize dynamic dispatch.
//! - A [`Tuple`] is copy-on-write: a small delta of `(slot, value)`
//!   bindings layered over the shared parent frame, instead of a full
//!   frame snapshot. Cloning a tuple clones a handful of [`Sequence`]
//!   handles — O(1) each, sharing the backing storage.
//! - `ForScan`, `LetBind`, `Filter`, `CountBind` and `WindowScan`
//!   stream; [`GroupConsume`] and [`OrderBy`] are pipeline *breakers*
//!   that drain their input before emitting.
//! - When the top-k rewrite ([`crate::rewrite::pushdown_topk`]) has set
//!   [`OrderByIr::limit`], `OrderBy` keeps a bounded binary heap of k
//!   tuples instead of sorting the whole input: O(n log k) comparisons,
//!   O(k) kept tuples.
//!
//! In-place slot writes are sound because the compiler never reuses slot
//! numbers: dropping a binding from scope only hides it, so every
//! binding in a body has a globally unique slot ([`Ir::Quantified`]
//! evaluation already relies on the same contract).

use crate::bytecode::{ExprPlan, ExprProgram};
use crate::context::{EvalStats, Focus};
use crate::error::{EngineError, EngineResult};
use crate::eval::{opt_atomic, untyped_to_string, Env, Interpreter};
use crate::ir::*;
use crate::keys::{atomic_key, GroupIndex};
use crate::profile::{OpKind, OpProfile, PipelineProfile, Span};
use crate::types::matches_seq_type;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};
use xqa_xdm::sequence::SequenceIntoIter;
use xqa_xdm::{
    deep_equal, effective_boolean_value, AtomicValue, ErrorCode, Item, Sequence, SequenceBuilder,
};

use crate::flwor::{compare_order_keys, sort_keyed, OrderKeys};

/// Tuples per batch. Large enough to amortize the virtual `next_batch`
/// call, small enough that a streaming chain stays cache-resident.
pub(crate) const BATCH: usize = 64;

/// Items per morsel: the unit of work claimed by parallel workers from
/// the outermost `for` binding sequence. Large enough that a claim (one
/// atomic increment plus a slice copy) is noise, small enough to
/// load-balance skewed per-item work across threads.
pub(crate) const MORSEL: usize = 1024;

/// Global position of a tuple in the serial stream: (morsel index,
/// emission ordinal within the morsel). Morsels are contiguous chunks
/// and each morsel's chain runs serially, so sorting by tag restores
/// exactly the serial tuple order — the stable-sort / first-appearance
/// tie-breaking the serial path gets for free.
type Tag = (usize, usize);

/// A copy-on-write tuple: bindings this FLWOR has made, layered over the
/// shared parent frame. Slots absent from the delta hold their parent
/// values in `env.slots`, which no pipeline operator ever overwrites.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tuple {
    delta: Vec<(Slot, Sequence)>,
}

impl Tuple {
    /// Bind `slot` in this tuple (replacing an existing binding: the
    /// compiler can re-bind a slot only for the same variable).
    fn bind(&mut self, slot: Slot, value: Sequence) {
        for entry in &mut self.delta {
            if entry.0 == slot {
                entry.1 = value;
                return;
            }
        }
        self.delta.push((slot, value));
    }

    /// Install this tuple's bindings into the frame before evaluating a
    /// per-tuple expression. O(|delta|) `Sequence` clones.
    fn apply(&self, env: &mut Env) {
        for (slot, value) in &self.delta {
            env.slots[*slot] = value.clone();
        }
    }
}

/// The Volcano-style pull interface: `Ok(Some(batch))` (possibly empty)
/// while tuples remain, `Ok(None)` once exhausted.
pub(crate) trait TupleSource {
    /// Pull the next batch of tuples.
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>>;
}

type BoxSource<'p> = Box<dyn TupleSource + 'p>;

/// Evaluate a FLWOR through the streaming pipeline. When profiling is
/// enabled on the dynamic context, every operator is wrapped in an
/// [`Instrumented`] decorator and the measured chain is recorded into
/// the context's profiler after the run.
///
/// A parallel-eligible chain (see [`crate::ir::parallel_eligible`])
/// running where more than one thread is available evaluates the outer
/// `for` binding sequence up front: inputs larger than one [`MORSEL`]
/// go to the morsel-parallel executor, smaller ones feed the already
/// evaluated items through the ordinary serial chain.
pub(crate) fn run(interp: &Interpreter, f: &FlworIr, env: &mut Env) -> EngineResult<Sequence> {
    debug_assert_eq!(f.plan.len(), f.clauses.len());
    if f.parallel && interp.parallel_ok {
        let threads = crate::resolve_threads(interp.query.threads);
        if threads > 1 {
            let ClauseIr::For { expr, .. } = &f.clauses[0] else {
                unreachable!("parallel-eligible FLWOR starts with a for clause");
            };
            let items = interp.eval(expr, env)?;
            if items.len() > MORSEL {
                return run_parallel(interp, f, env, items, threads);
            }
            return run_serial(interp, f, env, Some(items));
        }
    }
    run_serial(interp, f, env, None)
}

/// The single-threaded pipeline: the exact legacy execution path. When
/// `seed` carries an already evaluated outer binding sequence (the
/// too-small-to-split parallel fallback), the outermost `ForScan`
/// starts pre-seeded instead of evaluating its expression again.
fn run_serial(
    interp: &Interpreter,
    f: &FlworIr,
    env: &mut Env,
    mut seed: Option<Sequence>,
) -> EngineResult<Sequence> {
    let profiler = interp.dynamic.profiler().cloned();
    let mut counters: Vec<Rc<OpCounters>> = Vec::new();
    let cells = join_cells(f);
    let mut source: BoxSource = Box::new(Singleton { done: false });
    for (i, clause) in f.clauses.iter().enumerate() {
        source = match (i, seed.take(), clause) {
            (
                0,
                Some(items),
                ClauseIr::For {
                    slot,
                    at_slot,
                    ty,
                    expr,
                },
            ) => Box::new(ForScan {
                input: source,
                slot: *slot,
                at_slot: *at_slot,
                ty: ty.as_ref(),
                expr,
                expr_eval: ExprEval::new(flwor_plan(f, 0)),
                batch: Vec::new().into_iter(),
                items: items.into_iter(),
                item_pos: 0,
                base: Tuple::default(),
                input_done: true,
            }),
            (_, _, clause) => {
                clause_source(clause, flwor_plan(f, i), join_at(f, &cells, i), source)
            }
        };
        if profiler.is_some() {
            let c = Rc::new(OpCounters::default());
            counters.push(Rc::clone(&c));
            source = Box::new(Instrumented {
                input: source,
                counters: c,
            });
        }
    }
    let sink = ReturnAt {
        at: f.return_at,
        expr: &f.return_expr,
    };
    match profiler {
        None => sink.execute(source, interp, env).map(|(seq, _)| seq),
        Some(profiler) => {
            let clock = Arc::clone(interp.dynamic.clock());
            let start = clock.now_nanos();
            let (seq, sink_stats) = sink.execute(source, interp, env)?;
            let total = clock.now_nanos().saturating_sub(start);
            let p = build_profile(f, &counters, sink_stats, total);
            profiler.add_span(serial_span(&p, start, total));
            profiler.record(p);
            Ok(seq)
        }
    }
}

/// Batch sink for the streaming execution path: receives each
/// non-empty result batch in pipeline order. An `Err` aborts the run
/// (used by the serving layer to propagate socket write failures).
pub(crate) type EmitBatch<'e> = dyn FnMut(&[Item]) -> EngineResult<()> + 'e;

/// Streaming twin of [`run`]: instead of materializing the full result
/// `Sequence`, each pipeline batch's return-expression output is handed
/// to `emit` as soon as the batch is pulled. Returns the total number
/// of items emitted.
///
/// The morsel-parallel executor's deterministic merges need the whole
/// result before anything can be emitted in order, so the parallel path
/// materializes exactly as [`run`] does and then feeds the merged
/// sequence out in [`BATCH`]-sized chunks — the emitted bytes match the
/// serial path either way.
pub(crate) fn run_streaming(
    interp: &Interpreter,
    f: &FlworIr,
    env: &mut Env,
    emit: &mut EmitBatch,
) -> EngineResult<u64> {
    debug_assert_eq!(f.plan.len(), f.clauses.len());
    if f.parallel && interp.parallel_ok {
        let threads = crate::resolve_threads(interp.query.threads);
        if threads > 1 {
            let ClauseIr::For { expr, .. } = &f.clauses[0] else {
                unreachable!("parallel-eligible FLWOR starts with a for clause");
            };
            let items = interp.eval(expr, env)?;
            if items.len() > MORSEL {
                let seq = run_parallel(interp, f, env, items, threads)?;
                return emit_sequence(&seq, emit);
            }
            return run_serial_stream(interp, f, env, Some(items), emit);
        }
    }
    run_serial_stream(interp, f, env, None, emit)
}

/// Feed an already materialized sequence through `emit` in
/// [`BATCH`]-sized chunks. Used wherever a streaming caller hits a
/// path that must materialize (parallel merges, non-FLWOR bodies).
pub(crate) fn emit_sequence(seq: &Sequence, emit: &mut EmitBatch) -> EngineResult<u64> {
    for chunk in seq.chunks(BATCH) {
        if !chunk.is_empty() {
            emit(chunk)?;
        }
    }
    Ok(seq.len() as u64)
}

/// Streaming twin of [`run_serial`]: identical operator chain and
/// profiling, but the sink emits per-batch instead of building one
/// `Sequence`.
fn run_serial_stream(
    interp: &Interpreter,
    f: &FlworIr,
    env: &mut Env,
    mut seed: Option<Sequence>,
    emit: &mut EmitBatch,
) -> EngineResult<u64> {
    let profiler = interp.dynamic.profiler().cloned();
    let mut counters: Vec<Rc<OpCounters>> = Vec::new();
    let cells = join_cells(f);
    let mut source: BoxSource = Box::new(Singleton { done: false });
    for (i, clause) in f.clauses.iter().enumerate() {
        source = match (i, seed.take(), clause) {
            (
                0,
                Some(items),
                ClauseIr::For {
                    slot,
                    at_slot,
                    ty,
                    expr,
                },
            ) => Box::new(ForScan {
                input: source,
                slot: *slot,
                at_slot: *at_slot,
                ty: ty.as_ref(),
                expr,
                expr_eval: ExprEval::new(flwor_plan(f, 0)),
                batch: Vec::new().into_iter(),
                items: items.into_iter(),
                item_pos: 0,
                base: Tuple::default(),
                input_done: true,
            }),
            (_, _, clause) => {
                clause_source(clause, flwor_plan(f, i), join_at(f, &cells, i), source)
            }
        };
        if profiler.is_some() {
            let c = Rc::new(OpCounters::default());
            counters.push(Rc::clone(&c));
            source = Box::new(Instrumented {
                input: source,
                counters: c,
            });
        }
    }
    let sink = ReturnAt {
        at: f.return_at,
        expr: &f.return_expr,
    };
    match profiler {
        None => sink.stream(source, interp, env, emit).map(|(n, _)| n),
        Some(profiler) => {
            let clock = Arc::clone(interp.dynamic.clock());
            let start = clock.now_nanos();
            let (items, sink_stats) = sink.stream(source, interp, env, emit)?;
            let total = clock.now_nanos().saturating_sub(start);
            let p = build_profile(f, &counters, sink_stats, total);
            profiler.add_span(serial_span(&p, start, total));
            profiler.record(p);
            Ok(items)
        }
    }
}

/// The clause's compiled-expression plan, tolerating the empty table
/// tree mode and engine-less compilation leave behind.
fn flwor_plan(f: &FlworIr, i: usize) -> Option<&ExprPlan> {
    f.programs.get(i).and_then(Option::as_ref)
}

/// Per-operator expression-evaluation state: the compiled bytecode
/// program when lowering produced one, the register scratch it runs in
/// (sized once, reused across every tuple the operator sees), and
/// locally batched counter updates flushed to the shared stats block
/// once per output batch instead of once per tuple.
///
/// Programs are total — they raise exactly the errors the tree-walker
/// would — so an operator holding a `Compiled` plan never consults the
/// interpreter for its expression. `Interpreted` means lowering
/// declined the expression at compile time: the tree-walker evaluates
/// it and each evaluation counts as an `expr_fallback`. `None` (tree
/// mode, or IR that never went through lowering) counts nothing.
struct ExprEval<'p> {
    program: Option<&'p ExprProgram>,
    counts_fallback: bool,
    regs: Vec<Sequence>,
    n_compiled: u64,
    n_fallback: u64,
}

impl<'p> ExprEval<'p> {
    fn new(plan: Option<&'p ExprPlan>) -> ExprEval<'p> {
        let (program, counts_fallback) = match plan {
            Some(ExprPlan::Compiled(p)) => (Some(p), false),
            Some(ExprPlan::Interpreted) => (None, true),
            None => (None, false),
        };
        ExprEval {
            program,
            counts_fallback,
            regs: vec![Sequence::Empty; program.map_or(0, |p| p.reg_count())],
            n_compiled: 0,
            n_fallback: 0,
        }
    }

    /// Evaluate the clause expression against the current env frame,
    /// through the program when one was compiled.
    fn eval(&mut self, expr: &Ir, interp: &Interpreter, env: &mut Env) -> EngineResult<Sequence> {
        match self.program {
            Some(p) => {
                self.n_compiled += 1;
                p.eval(interp, env, &mut self.regs)
            }
            None => {
                if self.counts_fallback {
                    self.n_fallback += 1;
                }
                interp.eval(expr, env)
            }
        }
    }

    /// Flush locally accumulated evaluation counts to the stats block.
    fn flush(&mut self, stats: &EvalStats) {
        if self.n_compiled > 0 {
            stats.add_expr_compiled(self.n_compiled);
            self.n_compiled = 0;
        }
        if self.n_fallback > 0 {
            stats.add_expr_fallback(self.n_fallback);
            self.n_fallback = 0;
        }
    }
}

/// Lower one clause onto `input`, yielding the clause's operator.
/// `plan` is the clause's entry in [`FlworIr::programs`] (None for
/// clause kinds without a single lowerable expression, or in tree
/// mode). A clause whose plan slot the join-unnesting rewrite marked
/// [`PlanOpIr::HashJoin`] lowers to the hash-join operator instead of
/// its nested form; `join` carries the annotation plus the run-scoped
/// build-table cell shared by every lowering of the same clause.
fn clause_source<'p>(
    clause: &'p ClauseIr,
    plan: Option<&'p ExprPlan>,
    join: Option<(&'p JoinIr, JoinCell)>,
    input: BoxSource<'p>,
) -> BoxSource<'p> {
    if let Some((j, cell)) = join {
        return Box::new(HashJoin {
            input,
            j,
            cell,
            table: None,
        });
    }
    match clause {
        ClauseIr::For {
            slot,
            at_slot,
            ty,
            expr,
        } => Box::new(ForScan {
            input,
            slot: *slot,
            at_slot: *at_slot,
            ty: ty.as_ref(),
            expr,
            expr_eval: ExprEval::new(plan),
            batch: Vec::new().into_iter(),
            items: Sequence::Empty.into_iter(),
            item_pos: 0,
            base: Tuple::default(),
            input_done: false,
        }),
        ClauseIr::Let { slot, ty, expr } => Box::new(LetBind {
            input,
            slot: *slot,
            ty: ty.as_ref(),
            expr,
            expr_eval: ExprEval::new(plan),
        }),
        ClauseIr::Where(cond) => Box::new(Filter {
            input,
            cond,
            expr_eval: ExprEval::new(plan),
        }),
        ClauseIr::Count { slot } => Box::new(CountBind {
            input,
            slot: *slot,
            n: 0,
        }),
        ClauseIr::Window(w) => Box::new(WindowScan { input, w }),
        ClauseIr::GroupBy(g) => Box::new(GroupConsume {
            input,
            g,
            output: Vec::new().into_iter(),
            consumed: false,
        }),
        ClauseIr::OrderBy(ob) => Box::new(OrderBy {
            input,
            ob,
            output: Vec::new().into_iter(),
            consumed: false,
        }),
    }
}

/// Interior-mutable counters for one instrumented operator. `Rc<Cell>`
/// (not atomics) because one pipeline runs on one thread and
/// [`TupleSource`] is not `Send`.
#[derive(Debug, Default)]
struct OpCounters {
    batches: Cell<u64>,
    tuples_out: Cell<u64>,
    /// Cumulative time spent in this operator *and everything upstream*
    /// of it (`next_batch` pulls recursively); self time is recovered by
    /// subtracting the input operator's cumulative time.
    cum_nanos: Cell<u64>,
}

/// Decorator that meters the operator below it: batches, tuples and
/// wall time per `next_batch` call, read from the injected clock.
struct Instrumented<'p> {
    input: BoxSource<'p>,
    counters: Rc<OpCounters>,
}

impl TupleSource for Instrumented<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let clock = interp.dynamic.clock();
        let start = clock.now_nanos();
        let result = self.input.next_batch(interp, env);
        let elapsed = clock.now_nanos().saturating_sub(start);
        let c = &self.counters;
        c.cum_nanos.set(c.cum_nanos.get() + elapsed);
        if let Ok(Some(batch)) = &result {
            c.batches.set(c.batches.get() + 1);
            c.tuples_out.set(c.tuples_out.get() + batch.len() as u64);
        }
        result
    }
}

/// Assemble the measured operator chain for one pipeline execution.
/// Self time per operator = its cumulative time minus its input's;
/// tuples_in = the input operator's tuples_out (the `Singleton` root
/// seeds exactly one tuple).
fn build_profile(
    f: &FlworIr,
    counters: &[Rc<OpCounters>],
    sink_stats: SinkStats,
    total_nanos: u64,
) -> PipelineProfile {
    let mut ops = Vec::with_capacity(counters.len() + 1);
    let mut upstream_out = 1u64;
    let mut upstream_cum = 0u64;
    for (i, (clause, c)) in f.clauses.iter().zip(counters).enumerate() {
        let cum = c.cum_nanos.get();
        ops.push(OpProfile {
            kind: clause_op_kind(clause, join_ir(f, i)),
            detail: clause_op_detail(clause, join_ir(f, i)),
            batches: c.batches.get(),
            tuples_in: upstream_out,
            tuples_out: c.tuples_out.get(),
            nanos: cum.saturating_sub(upstream_cum),
            estimate: f.estimates.get(i).copied().flatten(),
        });
        upstream_out = c.tuples_out.get();
        upstream_cum = cum;
    }
    ops.push(OpProfile {
        kind: OpKind::ReturnAt,
        detail: String::new(),
        batches: sink_stats.batches,
        tuples_in: upstream_out,
        tuples_out: sink_stats.tuples,
        nanos: total_nanos.saturating_sub(upstream_cum),
        estimate: f.estimates.get(f.clauses.len()).copied().flatten(),
    });
    PipelineProfile {
        executions: 1,
        workers: 1,
        ops,
    }
}

/// Lay a serial execution's operator chain out as a span timeline.
/// The pipeline interleaves its operators batch-at-a-time, so exact
/// per-operator intervals don't exist; the children are placed
/// end-to-end by measured self time instead, preserving durations.
fn serial_span(p: &PipelineProfile, start_nanos: u64, total_nanos: u64) -> Span {
    let mut root = Span::leaf("pipeline", start_nanos, start_nanos + total_nanos);
    let mut at = start_nanos;
    for op in &p.ops {
        let end = at + op.nanos;
        root.children.push(Span::leaf(op.label(), at, end));
        at = end;
    }
    root
}

fn clause_op_kind(clause: &ClauseIr, join: Option<&JoinIr>) -> OpKind {
    if join.is_some() {
        return OpKind::HashJoin;
    }
    match clause {
        ClauseIr::For { .. } => OpKind::ForScan,
        ClauseIr::Let { .. } => OpKind::LetBind,
        ClauseIr::Where(_) => OpKind::Filter,
        ClauseIr::Count { .. } => OpKind::CountBind,
        ClauseIr::Window(_) => OpKind::WindowScan,
        ClauseIr::GroupBy(_) => OpKind::GroupConsume,
        ClauseIr::OrderBy(_) => OpKind::OrderBy,
    }
}

fn clause_op_detail(clause: &ClauseIr, join: Option<&JoinIr>) -> String {
    if let Some(j) = join {
        return j.key_desc.clone();
    }
    match clause {
        ClauseIr::OrderBy(ob) => match ob.limit {
            Some(k) => format!("limit={k}"),
            None => String::new(),
        },
        // A `for` over an index-annotated path advertises the access
        // path so `explain analyze` shows where tuples came from.
        ClauseIr::For { expr, .. } => match expr {
            Ir::Path(p) if p.access != AccessPathIr::Walk => {
                let name = match p.steps.first() {
                    Some(StepIr::Axis {
                        test: NodeTestIr::Name(q),
                        ..
                    }) => q.to_string(),
                    _ => "?".to_string(),
                };
                match &p.access {
                    AccessPathIr::IndexValueEq { child, .. } => {
                        format!("index scan //{name}[{child}=..]")
                    }
                    _ => format!("index scan //{name}"),
                }
            }
            _ => String::new(),
        },
        _ => String::new(),
    }
}

/// The pipeline root: one tuple with no bindings (the incoming frame).
struct Singleton {
    done: bool,
}

impl TupleSource for Singleton {
    fn next_batch(&mut self, _: &Interpreter, _: &mut Env) -> EngineResult<Option<Vec<Tuple>>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(vec![Tuple::default()]))
    }
}

/// `for $v (at $i)? in e`: fan out one tuple per item. Resumable: a
/// half-expanded binding sequence carries over to the next batch, so a
/// million-item `for` still emits [`BATCH`]-sized batches.
struct ForScan<'p> {
    input: BoxSource<'p>,
    slot: Slot,
    at_slot: Option<Slot>,
    ty: Option<&'p SeqTypeIr>,
    expr: &'p Ir,
    expr_eval: ExprEval<'p>,
    batch: std::vec::IntoIter<Tuple>,
    items: SequenceIntoIter,
    item_pos: i64,
    base: Tuple,
    input_done: bool,
}

impl TupleSource for ForScan<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let mut out = Vec::new();
        loop {
            for item in self.items.by_ref() {
                if let Some(ty) = self.ty {
                    let single = [item.clone()];
                    if !matches_seq_type(&single, ty) {
                        return Err(EngineError::dynamic(
                            ErrorCode::XPTY0004,
                            "for-binding value does not match its declared type",
                        ));
                    }
                }
                self.item_pos += 1;
                let mut t = self.base.clone();
                t.bind(self.slot, Sequence::One(item));
                if let Some(at) = self.at_slot {
                    t.bind(at, Sequence::one(self.item_pos));
                }
                out.push(t);
                if out.len() >= BATCH {
                    interp.stats.add_tuples_produced(out.len() as u64);
                    self.expr_eval.flush(interp.stats);
                    return Ok(Some(out));
                }
            }
            match self.batch.next() {
                Some(base) => {
                    base.apply(env);
                    self.items = self.expr_eval.eval(self.expr, interp, env)?.into_iter();
                    self.item_pos = 0;
                    self.base = base;
                }
                None if self.input_done => {
                    interp.stats.add_tuples_produced(out.len() as u64);
                    self.expr_eval.flush(interp.stats);
                    return Ok(if out.is_empty() { None } else { Some(out) });
                }
                None => match self.input.next_batch(interp, env)? {
                    Some(b) => self.batch = b.into_iter(),
                    None => self.input_done = true,
                },
            }
        }
    }
}

/// `let $v := e`: 1:1 streaming binder.
struct LetBind<'p> {
    input: BoxSource<'p>,
    slot: Slot,
    ty: Option<&'p SeqTypeIr>,
    expr: &'p Ir,
    expr_eval: ExprEval<'p>,
}

impl TupleSource for LetBind<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(mut batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        for t in &mut batch {
            t.apply(env);
            let seq = self.expr_eval.eval(self.expr, interp, env)?;
            if let Some(ty) = self.ty {
                if !matches_seq_type(&seq, ty) {
                    return Err(EngineError::dynamic(
                        ErrorCode::XPTY0004,
                        "let-binding value does not match its declared type",
                    ));
                }
            }
            t.bind(self.slot, seq);
        }
        self.expr_eval.flush(interp.stats);
        Ok(Some(batch))
    }
}

/// `where e`: streaming filter.
struct Filter<'p> {
    input: BoxSource<'p>,
    cond: &'p Ir,
    expr_eval: ExprEval<'p>,
}

impl TupleSource for Filter<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        let before = batch.len();
        let mut out = Vec::with_capacity(before);
        for t in batch {
            t.apply(env);
            let v = self.expr_eval.eval(self.cond, interp, env)?;
            if effective_boolean_value(&v).map_err(EngineError::from)? {
                out.push(t);
            }
        }
        interp
            .stats
            .add_tuples_pruned_filter((before - out.len()) as u64);
        self.expr_eval.flush(interp.stats);
        Ok(Some(out))
    }
}

// ──────────────────────── hash join ────────────────────────
//
// The join-unnesting rewrite (`crate::rewrite::detect_join_unnest`)
// marks a `let $m := for $y in SRC where KEY-pred return $y` clause or
// a `where some $y in SRC satisfies KEY-pred` clause whose SRC is
// independent of the enclosing bindings. The operator here replaces
// the per-tuple nested loop: SRC is materialized *once per FLWOR
// execution*, its key atoms bucketed by the canonical-key machinery of
// `crate::keys`, and each probing tuple does one hash lookup plus an
// exact verifying comparison per candidate.
//
// Output is byte-identical to the nested plan, including errors:
//
// - The build is lazy (first probing tuple). Zero probing tuples never
//   evaluate SRC — exactly like the nested loop.
// - Bucket hits are *candidates only*: equal values always share a
//   canonical key, the converse is verified with the real `eq`, and
//   candidates are visited in build order, so a many-match `let` binds
//   its items in SRC order.
// - Comparisons that could *raise* never take the hash path. Atoms are
//   partitioned into comparison classes (string/untyped, the numeric
//   tower, boolean, date, dateTime); within one class `=`/`eq` is
//   total, across classes it can error. A build side that mixes
//   classes or raised evaluating any key, and any probing tuple whose
//   atoms fall outside the build's class, fall back to a literal
//   nested-loop scan of the materialized items — same values, same
//   errors, same error order as the nested plan.

/// Comparison classes: `=`/`eq` between two atoms of the same class
/// never raises, and value equality implies canonical-key equality.
const CLASS_STRING: u8 = 1 << 0;
const CLASS_NUMERIC: u8 = 1 << 1;
const CLASS_BOOLEAN: u8 = 1 << 2;
const CLASS_DATE: u8 = 1 << 3;
const CLASS_DATETIME: u8 = 1 << 4;

fn atom_class(v: &AtomicValue) -> u8 {
    match v {
        // Untyped atomics compare as strings against strings (both
        // comparison kinds), so they share the string class; against
        // any other class they cast — which can raise — so mixing
        // routes to the fallback scan.
        AtomicValue::String(_) | AtomicValue::Untyped(_) => CLASS_STRING,
        AtomicValue::Integer(_) | AtomicValue::Decimal(_) | AtomicValue::Double(_) => CLASS_NUMERIC,
        AtomicValue::Boolean(_) => CLASS_BOOLEAN,
        AtomicValue::Date(_) => CLASS_DATE,
        AtomicValue::DateTime(_) => CLASS_DATETIME,
    }
}

/// `eq` between two atoms of one comparison class (the only pairing
/// the class gate admits). NaN stays unequal to itself, matching both
/// comparison kinds.
fn atom_eq(a: &AtomicValue, b: &AtomicValue) -> bool {
    let a = untyped_to_string(a.clone());
    let b = untyped_to_string(b.clone());
    matches!(
        xqa_xdm::value_compare(&a, &b, xqa_xdm::CompOp::Eq),
        Ok(true)
    )
}

/// Existential match: any (probe atom, build atom) pair equal.
fn atoms_match(probe: &[AtomicValue], build: &[AtomicValue]) -> bool {
    probe.iter().any(|p| build.iter().any(|b| atom_eq(p, b)))
}

/// The materialized build side of one hash join.
struct JoinTable {
    /// SRC items in evaluation order.
    items: Vec<Item>,
    /// Per item, the atomized key (aligned with `items`; truncated and
    /// unused when `scan_only`).
    keys: Vec<Vec<AtomicValue>>,
    /// Canonical atom key → ascending indices of items carrying it.
    buckets: HashMap<String, Vec<usize>>,
    /// Union of every build atom's class bit.
    classes: u8,
    /// Every probe must take the verbatim nested-loop scan: a build key
    /// raised, or the build atoms span comparison classes.
    scan_only: bool,
}

/// The per-run, per-clause build cell. Serial runs own one privately;
/// parallel runs share it across workers, so whichever worker probes
/// first builds and the rest (and the coordinator's replay chain)
/// reuse the table — or replay the build's error.
type JoinCell = Arc<OnceLock<Result<Arc<JoinTable>, EngineError>>>;

/// One cell per clause carrying a join annotation, created per
/// pipeline execution (enclosing bindings are fixed for the duration
/// of one `run`, so the table is reusable exactly within it).
fn join_cells(f: &FlworIr) -> Vec<Option<JoinCell>> {
    f.joins
        .iter()
        .map(|j| j.as_ref().map(|_| JoinCell::default()))
        .collect()
}

/// The join annotation + cell for clause `i`, if the rewrite attached
/// one (the argument `clause_source` consumes).
fn join_at<'p>(
    f: &'p FlworIr,
    cells: &[Option<JoinCell>],
    i: usize,
) -> Option<(&'p JoinIr, JoinCell)> {
    let j = f.joins.get(i)?.as_ref()?;
    let cell = cells.get(i)?.clone()?;
    Some((j, cell))
}

fn join_ir(f: &FlworIr, i: usize) -> Option<&JoinIr> {
    f.joins.get(i).and_then(Option::as_ref)
}

/// The build key of one item (already bound into the env), atomized
/// under the comparison's rules: a value comparison admits at most one
/// atom, a general comparison atomizes the whole sequence.
fn eval_join_key(
    j: &JoinIr,
    interp: &Interpreter,
    env: &mut Env,
) -> EngineResult<Vec<AtomicValue>> {
    let seq = interp.eval(&j.build_key, env)?;
    if j.value_comp {
        Ok(opt_atomic(&seq, "value comparison")?.into_iter().collect())
    } else {
        Ok(seq.iter().map(Item::atomize).collect())
    }
}

/// Evaluate SRC and materialize the build table (serial form).
fn build_join_table(j: &JoinIr, interp: &Interpreter, env: &mut Env) -> EngineResult<JoinTable> {
    let src = interp.eval(&j.build_src, env)?;
    build_join_table_from(j, interp, env, src.into_iter().collect())
}

/// Key, classify and bucket already-materialized SRC items. A key that
/// raises does not surface here: whether and when it would have in the
/// nested plan depends on the probe (a `some` stops at its first
/// preceding match), so the table just degrades to scan-only and the
/// per-probe scan re-raises it at exactly the nested position.
fn build_join_table_from(
    j: &JoinIr,
    interp: &Interpreter,
    env: &mut Env,
    items: Vec<Item>,
) -> EngineResult<JoinTable> {
    let mut table = JoinTable {
        keys: Vec::with_capacity(items.len()),
        items,
        buckets: HashMap::new(),
        classes: 0,
        scan_only: false,
    };
    let mut scratch = String::new();
    for (idx, item) in table.items.iter().enumerate() {
        env.slots[j.build_slot] = Sequence::One(item.clone());
        let Ok(atoms) = eval_join_key(j, interp, env) else {
            table.scan_only = true;
            break;
        };
        for a in &atoms {
            table.classes |= atom_class(a);
            scratch.clear();
            atomic_key(a, &mut scratch);
            let bucket = table.buckets.entry(scratch.clone()).or_default();
            if bucket.last() != Some(&idx) {
                bucket.push(idx);
            }
        }
        table.keys.push(atoms);
    }
    if table.classes.count_ones() > 1 {
        table.scan_only = true;
    }
    interp.stats.add_join_build_tuples(table.items.len() as u64);
    Ok(table)
}

/// Morsel-partitioned build for the parallel pre-build: SRC items are
/// chunked across scoped worker threads that atomize keys and bucket
/// their chunk (global indices), then the per-chunk buckets merge in
/// chunk order — per-key index lists stay ascending, so probe results
/// are identical to the serial build.
fn build_join_table_parallel(
    j: &JoinIr,
    interp: &Interpreter,
    env: &mut Env,
    threads: usize,
) -> EngineResult<JoinTable> {
    let src = interp.eval(&j.build_src, env)?;
    let items: Vec<Item> = src.into_iter().collect();
    if threads <= 1 || items.len() <= MORSEL {
        return build_join_table_from(j, interp, env, items);
    }
    let chunk = items.len().div_ceil(threads);
    let chunks: Vec<(usize, &[Item])> = items
        .chunks(chunk)
        .enumerate()
        .map(|(ci, c)| (ci * chunk, c))
        .collect();
    let worker_stats: Vec<EvalStats> = (0..chunks.len()).map(|_| EvalStats::default()).collect();
    type ChunkPart = (Vec<Vec<AtomicValue>>, HashMap<String, Vec<usize>>, u8, bool);
    let mut parts: Vec<ChunkPart> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(chunks.len());
        for (ws, (base, chunk_items)) in worker_stats.iter().zip(&chunks) {
            let winterp = interp.fork(ws);
            let wslots = env.slots.clone();
            let wfocus = env.focus.clone();
            let (base, chunk_items) = (*base, *chunk_items);
            handles.push(s.spawn(move || {
                let mut wenv = Env {
                    slots: wslots,
                    focus: wfocus,
                };
                let mut keys: Vec<Vec<AtomicValue>> = Vec::with_capacity(chunk_items.len());
                let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
                let mut classes = 0u8;
                let mut scratch = String::new();
                for (off, item) in chunk_items.iter().enumerate() {
                    wenv.slots[j.build_slot] = Sequence::One(item.clone());
                    let Ok(atoms) = eval_join_key(j, &winterp, &mut wenv) else {
                        return (keys, buckets, classes, true);
                    };
                    for a in &atoms {
                        classes |= atom_class(a);
                        scratch.clear();
                        atomic_key(a, &mut scratch);
                        let bucket = buckets.entry(scratch.clone()).or_default();
                        if bucket.last() != Some(&(base + off)) {
                            bucket.push(base + off);
                        }
                    }
                    keys.push(atoms);
                }
                (keys, buckets, classes, false)
            }));
        }
        for h in handles {
            parts.push(h.join().expect("join build worker panicked"));
        }
    });
    for ws in &worker_stats {
        interp.stats.add_snapshot(&ws.snapshot());
    }
    let mut table = JoinTable {
        keys: Vec::with_capacity(items.len()),
        items,
        buckets: HashMap::new(),
        classes: 0,
        scan_only: false,
    };
    for (keys, buckets, classes, raised) in parts {
        table.classes |= classes;
        table.keys.extend(keys);
        for (key, idxs) in buckets {
            table.buckets.entry(key).or_default().extend(idxs);
        }
        if raised {
            // Scan-only regardless of which chunk noticed first: the
            // flag depends only on the (deterministic) key values.
            table.scan_only = true;
            break;
        }
    }
    if table.classes.count_ones() > 1 {
        table.scan_only = true;
    }
    interp.stats.add_join_build_tuples(table.items.len() as u64);
    Ok(table)
}

/// The probe key's atoms for the current tuple, or `None` when this
/// tuple must take the fallback scan (an atom outside the build class
/// means a real pair comparison could raise).
fn probe_atoms(
    j: &JoinIr,
    table: &JoinTable,
    interp: &Interpreter,
    env: &mut Env,
) -> EngineResult<Option<Vec<AtomicValue>>> {
    let seq = interp.eval(&j.probe_key, env)?;
    let atoms: Vec<AtomicValue> = if j.value_comp {
        opt_atomic(&seq, "value comparison")?.into_iter().collect()
    } else {
        seq.iter().map(Item::atomize).collect()
    };
    // An all-empty build side (classes == 0) can never pair with
    // anything: no comparison happens, so any probe is safe (and
    // matches nothing).
    if table.classes != 0 && atoms.iter().any(|a| atom_class(a) != table.classes) {
        return Ok(None);
    }
    Ok(Some(atoms))
}

/// Candidate build indices for a probe: the union of its atoms'
/// buckets, ascending (build order) and deduplicated.
fn join_candidates(table: &JoinTable, atoms: &[AtomicValue]) -> Vec<usize> {
    let mut scratch = String::new();
    let mut cands: Vec<usize> = Vec::new();
    for a in atoms {
        scratch.clear();
        atomic_key(a, &mut scratch);
        if let Some(bucket) = table.buckets.get(scratch.as_str()) {
            cands.extend_from_slice(bucket);
        }
    }
    cands.sort_unstable();
    cands.dedup();
    cands
}

/// One `let`-side probe: the matching build items in SRC order.
fn probe_let(
    j: &JoinIr,
    table: &JoinTable,
    interp: &Interpreter,
    env: &mut Env,
) -> EngineResult<Sequence> {
    if table.items.is_empty() {
        // The nested loop iterates nothing and never touches the
        // probe-side expression.
        return Ok(Sequence::Empty);
    }
    if table.scan_only {
        return scan_let(j, table, interp, env);
    }
    let Some(atoms) = probe_atoms(j, table, interp, env)? else {
        return scan_let(j, table, interp, env);
    };
    interp.stats.add_join_hash_probes(1);
    let mut out = SequenceBuilder::new();
    for idx in join_candidates(table, &atoms) {
        if atoms_match(&atoms, &table.keys[idx]) {
            out.push(table.items[idx].clone());
        }
    }
    Ok(out.build())
}

/// One semi-join probe: does any build item match?
fn probe_semi(
    j: &JoinIr,
    table: &JoinTable,
    interp: &Interpreter,
    env: &mut Env,
) -> EngineResult<bool> {
    if table.items.is_empty() {
        return Ok(false);
    }
    if table.scan_only {
        return scan_semi(j, table, interp, env);
    }
    let Some(atoms) = probe_atoms(j, table, interp, env)? else {
        return scan_semi(j, table, interp, env);
    };
    interp.stats.add_join_hash_probes(1);
    Ok(join_candidates(table, &atoms)
        .into_iter()
        .any(|idx| atoms_match(&atoms, &table.keys[idx])))
}

/// Verbatim replay of the nested `for $y in SRC where pred return $y`
/// loop over the materialized items: same values, same errors, same
/// error order (SRC is constructor-free, so materializing it once
/// preserves item — and node — identity).
fn scan_let(
    j: &JoinIr,
    table: &JoinTable,
    interp: &Interpreter,
    env: &mut Env,
) -> EngineResult<Sequence> {
    let mut out = SequenceBuilder::new();
    for item in &table.items {
        env.slots[j.build_slot] = Sequence::One(item.clone());
        let v = interp.eval(&j.pred, env)?;
        if effective_boolean_value(&v).map_err(EngineError::from)? {
            out.push(item.clone());
        }
    }
    Ok(out.build())
}

/// Verbatim replay of `some $y in SRC satisfies pred`: first match
/// wins, and — exactly like the quantifier — an erroring predicate
/// only raises if no earlier item matched.
fn scan_semi(
    j: &JoinIr,
    table: &JoinTable,
    interp: &Interpreter,
    env: &mut Env,
) -> EngineResult<bool> {
    for item in &table.items {
        env.slots[j.build_slot] = Sequence::One(item.clone());
        if interp.eval_ebv(&j.pred, env)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The hash-join operator: a streaming binder (`let` shape) or filter
/// (`some` shape) probing the shared build table.
struct HashJoin<'p> {
    input: BoxSource<'p>,
    j: &'p JoinIr,
    cell: JoinCell,
    /// Resolved handle, cached after the first probe.
    table: Option<Arc<JoinTable>>,
}

impl HashJoin<'_> {
    /// The build table, building it on first use (and replaying the
    /// build's error on every later probe, as re-evaluating SRC would).
    fn table(&mut self, interp: &Interpreter, env: &mut Env) -> EngineResult<Arc<JoinTable>> {
        if let Some(t) = &self.table {
            return Ok(Arc::clone(t));
        }
        let built = self
            .cell
            .get_or_init(|| build_join_table(self.j, interp, env).map(Arc::new))
            .clone()?;
        self.table = Some(Arc::clone(&built));
        Ok(built)
    }
}

impl TupleSource for HashJoin<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        let before = batch.len();
        let mut out = Vec::with_capacity(before);
        for mut t in batch {
            t.apply(env);
            let table = self.table(interp, env)?;
            match &self.j.kind {
                JoinKindIr::LetMany { slot, ty } => {
                    let seq = probe_let(self.j, &table, interp, env)?;
                    if let Some(ty) = ty {
                        if !matches_seq_type(&seq, ty) {
                            return Err(EngineError::dynamic(
                                ErrorCode::XPTY0004,
                                "let-binding value does not match its declared type",
                            ));
                        }
                    }
                    t.bind(*slot, seq);
                    out.push(t);
                }
                JoinKindIr::ExistsSemi => {
                    if probe_semi(self.j, &table, interp, env)? {
                        out.push(t);
                    }
                }
            }
        }
        if matches!(self.j.kind, JoinKindIr::ExistsSemi) {
            interp
                .stats
                .add_tuples_pruned_filter((before - out.len()) as u64);
        }
        Ok(Some(out))
    }
}

/// `count $v`: bind the 1-based ordinal at this pipeline point.
struct CountBind<'p> {
    input: BoxSource<'p>,
    slot: Slot,
    n: i64,
}

impl TupleSource for CountBind<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(mut batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        for t in &mut batch {
            self.n += 1;
            t.bind(self.slot, Sequence::one(self.n));
        }
        Ok(Some(batch))
    }
}

/// Window clause: delegates the boundary-condition machinery to the
/// materializing [`Interpreter::apply_window`] one input tuple at a
/// time, then converts the full-frame outputs back into deltas (only
/// the window slot and the condition-variable slots can have changed).
/// Windows are not a hot path; correctness over allocation thrift.
struct WindowScan<'p> {
    input: BoxSource<'p>,
    w: &'p WindowIr,
}

impl TupleSource for WindowScan<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        let mut out = Vec::new();
        for t in batch {
            t.apply(env);
            let frame = env.slots.clone();
            let windows = interp.apply_window(self.w, vec![frame.clone()], env)?;
            // apply_window leaves the frame moved-out; restore it.
            env.slots = frame;
            for full in windows {
                let mut nt = t.clone();
                bind_from_frame(&mut nt, &full, self.w.slot);
                bind_cond_slots(&mut nt, &full, &self.w.start);
                if let Some(end) = &self.w.end {
                    bind_cond_slots(&mut nt, &full, end);
                }
                out.push(nt);
            }
        }
        interp.stats.add_tuples_produced(out.len() as u64);
        Ok(Some(out))
    }
}

fn bind_from_frame(t: &mut Tuple, frame: &[Sequence], slot: Slot) {
    t.bind(slot, frame[slot].clone());
}

fn bind_cond_slots(t: &mut Tuple, frame: &[Sequence], cond: &WindowCondIr) {
    for slot in [
        cond.item_slot,
        cond.at_slot,
        cond.previous_slot,
        cond.next_slot,
    ]
    .into_iter()
    .flatten()
    {
        bind_from_frame(t, frame, slot);
    }
}

/// `group by ... nest ...`: pipeline breaker. Drains the input into a
/// hash aggregation ([`GroupIndex`], scratch-buffer key building), then
/// emits one tuple per group in first-appearance order.
struct GroupConsume<'p> {
    input: BoxSource<'p>,
    g: &'p GroupByIr,
    output: std::vec::IntoIter<Tuple>,
    consumed: bool,
}

struct GroupState {
    /// One key sequence per grouping variable.
    keys: Vec<Sequence>,
    /// The first member tuple (source of outer-variable values for the
    /// output tuple; pre-group slots in it are hidden by the compiler's
    /// §3.2 scope rule).
    base: Tuple,
    /// Collected nest entries: per nest binding, per member.
    nests: Vec<Vec<(OrderKeys, Sequence)>>,
}

impl GroupConsume<'_> {
    fn consume(&mut self, interp: &Interpreter, env: &mut Env) -> EngineResult<()> {
        let g = self.g;
        let stats = &interp.stats;
        let has_using = g.keys.iter().any(|k| k.using.is_some());
        let mut groups: Vec<GroupState> = Vec::new();
        let mut index = GroupIndex::new();
        let mut scratch = String::new();
        let mut consumed = 0u64;

        while let Some(batch) = self.input.next_batch(interp, env)? {
            consumed += batch.len() as u64;
            for t in batch {
                t.apply(env);
                let mut key_vals: Vec<Sequence> = Vec::with_capacity(g.keys.len());
                for key in &g.keys {
                    key_vals.push(interp.eval(&key.expr, env)?);
                }
                let mut nest_vals: Vec<(OrderKeys, Sequence)> = Vec::with_capacity(g.nests.len());
                for nest in &g.nests {
                    let value = interp.eval(&nest.expr, env)?;
                    let okeys = match &nest.order_by {
                        Some(ob) => interp.order_keys(&ob.specs, env)?,
                        None => Vec::new(),
                    };
                    nest_vals.push((okeys, value));
                }

                let group_idx = if has_using {
                    // Custom equality (§3.3): linear scan with the
                    // user-supplied comparator for `using` keys and
                    // deep-equal for the rest.
                    let mut found = None;
                    'groups: for (gi, group) in groups.iter().enumerate() {
                        for (key, (stored, candidate)) in
                            g.keys.iter().zip(group.keys.iter().zip(&key_vals))
                        {
                            let equal = match key.using {
                                Some(fid) => {
                                    let result = interp.call_user_values(
                                        fid,
                                        vec![stored.clone(), candidate.clone()],
                                    )?;
                                    effective_boolean_value(&result).map_err(EngineError::from)?
                                }
                                None => deep_equal(stored, candidate),
                            };
                            if !equal {
                                continue 'groups;
                            }
                        }
                        found = Some(gi);
                        break;
                    }
                    found
                } else {
                    index
                        .find_or_insert_buf(&mut scratch, &key_vals, groups.len(), |i| {
                            groups[i].keys.as_slice()
                        })
                        .ok()
                };

                match group_idx {
                    Some(gi) => {
                        for (slot, entry) in groups[gi].nests.iter_mut().zip(nest_vals) {
                            slot.push(entry);
                        }
                    }
                    None => {
                        groups.push(GroupState {
                            keys: key_vals,
                            base: t,
                            nests: nest_vals.into_iter().map(|e| vec![e]).collect(),
                        });
                    }
                }
            }
        }

        stats.add_tuples_grouped(consumed);
        stats.add_groups_emitted(groups.len() as u64);

        self.output = emit_groups(g, groups)?.into_iter();
        Ok(())
    }
}

/// One output tuple per group, in first-appearance order (stable,
/// matching the materializing path): bind the key slots and the sorted,
/// concatenated nest sequences onto each group's base tuple.
fn emit_groups(g: &GroupByIr, groups: Vec<GroupState>) -> EngineResult<Vec<Tuple>> {
    let mut out = Vec::with_capacity(groups.len());
    for group in groups {
        let mut t = group.base;
        for (key, vals) in g.keys.iter().zip(group.keys) {
            t.bind(key.slot, vals);
        }
        for (nest, mut entries) in g.nests.iter().zip(group.nests) {
            if let Some(ob) = &nest.order_by {
                sort_keyed(&mut entries, &ob.specs)?;
            }
            let mut seq = SequenceBuilder::new();
            for (_, vals) in entries {
                // Nest values concatenate into one flat sequence —
                // "merged and lose their individual identity" (§3.1).
                // A single-member nest adopts its value's storage whole.
                seq.append(vals);
            }
            t.bind(nest.slot, seq.build());
        }
        out.push(t);
    }
    Ok(out)
}

impl TupleSource for GroupConsume<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        if !self.consumed {
            self.consumed = true;
            self.consume(interp, env)?;
        }
        Ok(drain_batch(&mut self.output))
    }
}

/// `order by`: pipeline breaker. Full stable sort, or — when the top-k
/// rewrite set a limit — a bounded binary heap that keeps only the k
/// least tuples seen so far.
struct OrderBy<'p> {
    input: BoxSource<'p>,
    ob: &'p OrderByIr,
    output: std::vec::IntoIter<Tuple>,
    consumed: bool,
}

impl OrderBy<'_> {
    fn consume(&mut self, interp: &Interpreter, env: &mut Env) -> EngineResult<()> {
        let specs = &self.ob.specs;
        let sorted = match self.ob.limit {
            Some(k) => {
                let mut heap = TopKHeap::new(specs, k);
                let mut pruned = 0u64;
                let mut seq = 0usize;
                while let Some(batch) = self.input.next_batch(interp, env)? {
                    for t in batch {
                        t.apply(env);
                        let keys = interp.order_keys(specs, env)?;
                        // An offer against a full heap prunes exactly one
                        // tuple: the newcomer (rejected) or an eviction.
                        let was_full = heap.saturated();
                        heap.offer(keys, (0, seq), t)?;
                        seq += 1;
                        if was_full {
                            pruned += 1;
                        }
                    }
                }
                interp.stats.add_tuples_pruned_topk(pruned);
                heap.into_sorted()?
            }
            None => {
                let mut keyed: Vec<(OrderKeys, Tuple)> = Vec::new();
                while let Some(batch) = self.input.next_batch(interp, env)? {
                    for t in batch {
                        t.apply(env);
                        let keys = interp.order_keys(specs, env)?;
                        keyed.push((keys, t));
                    }
                }
                sort_keyed(&mut keyed, specs)?;
                keyed.into_iter().map(|(_, t)| t).collect()
            }
        };
        self.output = sorted.into_iter();
        Ok(())
    }
}

impl TupleSource for OrderBy<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        if !self.consumed {
            self.consumed = true;
            self.consume(interp, env)?;
        }
        Ok(drain_batch(&mut self.output))
    }
}

/// Emit up to [`BATCH`] tuples from a breaker's buffered output.
fn drain_batch(output: &mut std::vec::IntoIter<Tuple>) -> Option<Vec<Tuple>> {
    let mut out = Vec::with_capacity(BATCH.min(output.len()));
    for t in output.by_ref() {
        out.push(t);
        if out.len() >= BATCH {
            break;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// A bounded max-heap of the k least `(keys, tag)` entries, with a
/// *fallible* comparator (order keys of mixed type raise `XPTY0004`,
/// which `std::collections::BinaryHeap` cannot propagate — hence the
/// hand-rolled sift loops). The [`Tag`] breaks ties by global input
/// order, so the survivors are exactly the first k of a full stable
/// sort — on the serial path tags are `(0, seq)`, in a parallel worker
/// they carry the morsel index.
struct TopKHeap<'p> {
    specs: &'p [OrderSpecIr],
    k: usize,
    /// Max-heap: `entries[0]` is the greatest survivor.
    entries: Vec<(OrderKeys, Tag, Tuple)>,
}

impl<'p> TopKHeap<'p> {
    fn new(specs: &'p [OrderSpecIr], k: usize) -> Self {
        TopKHeap {
            specs,
            k,
            entries: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Whether the heap is full (every further offer prunes a tuple).
    fn saturated(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// Is entry `a` strictly greater than `b` under (keys, tag)?
    fn greater(
        &self,
        a: &(OrderKeys, Tag, Tuple),
        b: &(OrderKeys, Tag, Tuple),
    ) -> EngineResult<bool> {
        Ok(match compare_order_keys(&a.0, &b.0, self.specs)? {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => a.1 > b.1,
        })
    }

    /// Offer a tuple; returns whether it was kept.
    fn offer(&mut self, keys: OrderKeys, tag: Tag, tuple: Tuple) -> EngineResult<bool> {
        let entry = (keys, tag, tuple);
        if self.k == 0 {
            return Ok(false);
        }
        if self.entries.len() < self.k {
            self.entries.push(entry);
            self.sift_up(self.entries.len() - 1)?;
            return Ok(true);
        }
        if self.greater(&entry, &self.entries[0])? {
            // Not among the k least: reject.
            return Ok(false);
        }
        self.entries[0] = entry;
        self.sift_down(0)?;
        Ok(true)
    }

    fn sift_up(&mut self, mut i: usize) -> EngineResult<()> {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.greater(&self.entries[i], &self.entries[parent])? {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn sift_down(&mut self, mut i: usize) -> EngineResult<()> {
        let n = self.entries.len();
        loop {
            let mut largest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < n && self.greater(&self.entries[child], &self.entries[largest])? {
                    largest = child;
                }
            }
            if largest == i {
                return Ok(());
            }
            self.entries.swap(i, largest);
            i = largest;
        }
    }

    /// The surviving tuples in ascending (keys, tag) order.
    fn into_sorted(self) -> EngineResult<Vec<Tuple>> {
        let specs = self.specs;
        let mut entries = self.entries;
        sort_tagged(&mut entries, specs)?;
        Ok(entries.into_iter().map(|(_, _, t)| t).collect())
    }

    /// The raw surviving entries (the parallel merge sorts them with the
    /// other workers' survivors before dropping the tags).
    fn into_entries(self) -> Vec<(OrderKeys, Tag, Tuple)> {
        self.entries
    }
}

/// Stable sort of tagged entries by (order keys, tag), capturing the
/// first comparator failure instead of unwinding mid-sort.
fn sort_tagged(entries: &mut [(OrderKeys, Tag, Tuple)], specs: &[OrderSpecIr]) -> EngineResult<()> {
    let mut failure: Option<EngineError> = None;
    entries.sort_by(|a, b| {
        if failure.is_some() {
            return Ordering::Equal;
        }
        match compare_order_keys(&a.0, &b.0, specs) {
            Ok(Ordering::Equal) => a.1.cmp(&b.1),
            Ok(ord) => ord,
            Err(e) => {
                failure = Some(e);
                Ordering::Equal
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

// ──────────────────── morsel-driven parallelism ────────────────────
//
// A parallel-eligible chain (outer `for`, then only tuple-local
// streaming clauses up to at most one breaker) is split at the breaker:
// workers claim [`MORSEL`]-sized chunks of the outer binding sequence
// from a shared atomic counter and run their own clone of the streaming
// chain into a *partitioned* breaker state (per-worker hash tables or
// top-k heaps). The coordinator merges the partials back into the exact
// serial tuple order — every tuple carries a [`Tag`] — and feeds any
// clauses after the breaker, plus the `return` sink, serially.

/// A per-worker group: [`GroupState`] plus the tags the merge needs to
/// restore serial first-appearance order and per-group nest order.
struct WGroup {
    keys: Vec<Sequence>,
    base: Tuple,
    /// Tag of the group's first member seen by this worker; the merged
    /// group keeps the base/keys of the globally smallest tag.
    first: Tag,
    /// Per nest binding, per member: tagged so merged entries can be
    /// re-sorted into serial arrival order before any nest `order by`.
    nests: Vec<Vec<(Tag, OrderKeys, Sequence)>>,
}

/// What one worker hands back to the coordinator.
enum WorkerOutput {
    /// No breaker, no `return at`: fully evaluated per-morsel output
    /// fragments, keyed by morsel index for ordered concatenation.
    Seqs(Vec<(usize, Sequence)>),
    /// No breaker but `return at $rank`: tagged tuples; ranks are
    /// assigned by the serial sink after the order-restoring merge.
    Tuples(Vec<(Tag, Tuple)>),
    /// Partitioned hash aggregation for a `group by` breaker.
    Groups(Vec<WGroup>),
    /// Locally sorted run (or top-k survivors) for an `order by`.
    Runs(Vec<(OrderKeys, Tag, Tuple)>),
}

/// A plain-data snapshot of one [`OpCounters`] (`Rc` is not `Send`, so
/// workers snapshot before returning).
#[derive(Debug, Clone, Copy, Default)]
struct CounterSnap {
    batches: u64,
    tuples_out: u64,
    cum_nanos: u64,
}

/// Everything a worker thread reports back.
struct WorkerReport {
    /// The partial output, or the first error with the index of the
    /// morsel that raised it (the coordinator keeps the smallest).
    output: Result<WorkerOutput, (usize, EngineError)>,
    /// Per-chain-operator counter snapshots (empty when not profiling).
    counters: Vec<CounterSnap>,
    /// Wall time this worker spent in its claim loop (0 when not
    /// profiling — no clock reads off the profiled path).
    loop_nanos: u64,
    /// The loop's (start, end) readings on the shared profiling clock,
    /// for the span timeline (`None` when not profiling).
    loop_span: Option<(u64, u64)>,
}

/// A worker's breaker-side accumulator, chosen from the clause at the
/// split point.
enum Acc<'p> {
    Seqs(Vec<(usize, Sequence)>),
    Tuples(Vec<(Tag, Tuple)>),
    Groups {
        g: &'p GroupByIr,
        groups: Vec<WGroup>,
        index: GroupIndex,
        scratch: String,
        consumed: u64,
    },
    TopK {
        heap: TopKHeap<'p>,
        pruned: u64,
    },
    Runs {
        entries: Vec<(OrderKeys, Tag, Tuple)>,
        specs: &'p [OrderSpecIr],
    },
}

/// Coordinator-side source replaying merged breaker output into the
/// clauses after the split point (and the sink).
struct Replay {
    output: std::vec::IntoIter<Tuple>,
}

impl TupleSource for Replay {
    fn next_batch(&mut self, _: &Interpreter, _: &mut Env) -> EngineResult<Option<Vec<Tuple>>> {
        Ok(drain_batch(&mut self.output))
    }
}

/// Morsel-parallel execution of an eligible FLWOR over an already
/// evaluated outer binding sequence.
fn run_parallel(
    interp: &Interpreter,
    f: &FlworIr,
    env: &mut Env,
    items: Sequence,
    threads: usize,
) -> EngineResult<Sequence> {
    // The split point: the first breaker, or the whole chain. Clauses
    // after the breaker (and the sink) run serially on the merged,
    // serial-order stream, so they need no eligibility restrictions of
    // their own.
    let cut = f
        .clauses
        .iter()
        .position(|c| matches!(c, ClauseIr::GroupBy(_) | ClauseIr::OrderBy(_)))
        .unwrap_or(f.clauses.len());
    let morsel_count = items.len().div_ceil(MORSEL);
    let workers = threads.min(morsel_count);
    let cells = join_cells(f);
    // Pre-build a join table sitting directly behind the outer `for`
    // with the morsel-partitioned parallel build. Safe to build eagerly
    // only there: the outer binding has items (> MORSEL) and an
    // untyped `for` cannot raise before its first tuple probes, so the
    // build side is certain to be evaluated; behind any later clause a
    // filter or a raising expression could mean it never is, and those
    // joins stay lazy (first probing worker builds into the shared
    // cell).
    if let Some(j) = join_ir(f, 1) {
        if matches!(&f.clauses[0], ClauseIr::For { ty: None, .. }) {
            if let Some(cell) = cells[1].as_ref() {
                let built = build_join_table_parallel(j, interp, env, threads).map(Arc::new);
                let _ = cell.set(built);
            }
        }
    }
    let profiler = interp.dynamic.profiler().cloned();
    let profiling = profiler.is_some();
    let clock = profiling.then(|| Arc::clone(interp.dynamic.clock()));
    let total_start = clock.as_ref().map(|c| c.now_nanos());

    let next = AtomicUsize::new(0);
    let error_floor = AtomicUsize::new(usize::MAX);
    // One private stats sink per worker, merged once after the join:
    // a single `add_snapshot` call per worker per query instead of
    // contended per-batch atomics on the shared sink.
    let worker_stats: Vec<EvalStats> = (0..workers).map(|_| EvalStats::default()).collect();
    let items_ref: &[Item] = &items;
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for ws in &worker_stats {
            // Interpreter is Send but not Sync (its recursion-depth
            // Cell): fork on the coordinator, move into the thread.
            let winterp = interp.fork(ws);
            let wslots = env.slots.clone();
            let wfocus = env.focus.clone();
            let next = &next;
            let error_floor = &error_floor;
            let cells = &cells;
            handles.push(s.spawn(move || {
                run_worker(
                    winterp,
                    f,
                    cut,
                    items_ref,
                    morsel_count,
                    next,
                    error_floor,
                    wslots,
                    wfocus,
                    profiling,
                    cells,
                )
            }));
        }
        for h in handles {
            reports.push(h.join().expect("parallel pipeline worker panicked"));
        }
    });
    for ws in &worker_stats {
        interp.stats.add_snapshot(&ws.snapshot());
    }

    let mut outputs: Vec<WorkerOutput> = Vec::with_capacity(workers);
    let mut snaps: Vec<Vec<CounterSnap>> = Vec::with_capacity(workers);
    let mut worker_loop_nanos = 0u64;
    let mut worker_spans: Vec<Span> = Vec::new();
    let mut first_error: Option<(usize, EngineError)> = None;
    for (wid, r) in reports.into_iter().enumerate() {
        worker_loop_nanos += r.loop_nanos;
        if let Some((s, e)) = r.loop_span {
            worker_spans.push(Span {
                name: "worker".to_string(),
                start_nanos: s,
                end_nanos: e,
                worker: Some(wid as u64),
                children: Vec::new(),
            });
        }
        snaps.push(r.counters);
        match r.output {
            Ok(o) => outputs.push(o),
            // Keep the error from the smallest morsel index: tuple
            // results are independent, so that is exactly the error the
            // serial pipeline would have raised first.
            Err((m, e)) => match &first_error {
                Some((fm, _)) if *fm <= m => {}
                _ => first_error = Some((m, e)),
            },
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }

    let merge_start = clock.as_ref().map(|c| c.now_nanos());

    if cut == f.clauses.len() && f.return_at.is_none() {
        // Fully streamed: concatenate per-morsel fragments in order.
        let mut frags: Vec<(usize, Sequence)> = Vec::new();
        for o in outputs {
            let WorkerOutput::Seqs(v) = o else {
                unreachable!("worker output mode mismatch");
            };
            frags.extend(v);
        }
        frags.sort_unstable_by_key(|(m, _)| *m);
        let mut out = SequenceBuilder::new();
        for (_, frag) in frags {
            out.append(frag);
        }
        let out = out.build();
        if let (Some(profiler), Some(clock), Some(start)) = (&profiler, &clock, total_start) {
            let merge_nanos = clock
                .now_nanos()
                .saturating_sub(merge_start.unwrap_or_default());
            let total = clock.now_nanos().saturating_sub(start);
            profiler.add_span(parallel_span(
                start,
                start + total,
                worker_spans,
                merge_start.unwrap_or_default(),
                merge_nanos,
            ));
            profiler.record(build_parallel_profile(
                f,
                cut,
                workers,
                &snaps,
                worker_loop_nanos,
                merge_nanos,
                None,
                None,
                total,
            ));
        }
        return Ok(out);
    }

    // Merge the partials back into the exact serial-order tuple stream.
    let merged: Vec<Tuple> = if cut == f.clauses.len() {
        // No breaker, but `return at` needs globally ranked tuples.
        let mut tagged: Vec<(Tag, Tuple)> = Vec::new();
        for o in outputs {
            let WorkerOutput::Tuples(v) = o else {
                unreachable!("worker output mode mismatch");
            };
            tagged.extend(v);
        }
        tagged.sort_unstable_by_key(|(tag, _)| *tag);
        tagged.into_iter().map(|(_, t)| t).collect()
    } else {
        match &f.clauses[cut] {
            ClauseIr::GroupBy(g) => {
                let mut merged: Vec<WGroup> = Vec::new();
                let mut index = GroupIndex::new();
                let mut scratch = String::new();
                for o in outputs {
                    let WorkerOutput::Groups(groups) = o else {
                        unreachable!("worker output mode mismatch");
                    };
                    for wg in groups {
                        let hit = index
                            .find_or_insert_buf(&mut scratch, &wg.keys, merged.len(), |i| {
                                merged[i].keys.as_slice()
                            })
                            .ok();
                        match hit {
                            Some(gi) => {
                                let dst = &mut merged[gi];
                                for (slot, mut entries) in dst.nests.iter_mut().zip(wg.nests) {
                                    slot.append(&mut entries);
                                }
                                if wg.first < dst.first {
                                    // Serial semantics: the group's base
                                    // tuple and key values come from its
                                    // globally first member. The keys are
                                    // deep-equal (same canonical string),
                                    // so the index stays valid.
                                    dst.first = wg.first;
                                    dst.keys = wg.keys;
                                    dst.base = wg.base;
                                }
                            }
                            None => merged.push(wg),
                        }
                    }
                }
                // First-appearance order across the whole input.
                merged.sort_unstable_by_key(|wg| wg.first);
                interp.stats.add_groups_emitted(merged.len() as u64);
                let mut states = Vec::with_capacity(merged.len());
                for wg in merged {
                    let mut nests = Vec::with_capacity(wg.nests.len());
                    for mut entries in wg.nests {
                        // Serial arrival order first; any nest `order by`
                        // then stable-sorts on top (emit_groups).
                        entries.sort_unstable_by_key(|e| e.0);
                        nests.push(
                            entries
                                .into_iter()
                                .map(|(_, okeys, v)| (okeys, v))
                                .collect::<Vec<_>>(),
                        );
                    }
                    states.push(GroupState {
                        keys: wg.keys,
                        base: wg.base,
                        nests,
                    });
                }
                emit_groups(g, states)?
            }
            ClauseIr::OrderBy(ob) => {
                let mut entries: Vec<(OrderKeys, Tag, Tuple)> = Vec::new();
                for o in outputs {
                    let WorkerOutput::Runs(v) = o else {
                        unreachable!("worker output mode mismatch");
                    };
                    entries.extend(v);
                }
                sort_tagged(&mut entries, &ob.specs)?;
                if let Some(k) = ob.limit {
                    if entries.len() > k {
                        // Workers already counted their local prunes;
                        // the cross-worker survivors cut here complete
                        // the serial total of n − k.
                        interp
                            .stats
                            .add_tuples_pruned_topk((entries.len() - k) as u64);
                        entries.truncate(k);
                    }
                }
                entries.into_iter().map(|(_, _, t)| t).collect()
            }
            _ => unreachable!("cut points at a breaker clause"),
        }
    };
    let merge_nanos = match (&clock, merge_start) {
        (Some(c), Some(s)) => c.now_nanos().saturating_sub(s),
        _ => 0,
    };

    let has_breaker = cut < f.clauses.len();
    let mut source: BoxSource = Box::new(Replay {
        output: merged.into_iter(),
    });
    let replay_counter = (profiling && has_breaker).then(|| Rc::new(OpCounters::default()));
    if let Some(c) = &replay_counter {
        source = Box::new(Instrumented {
            input: source,
            counters: Rc::clone(c),
        });
    }
    let mut down_counters: Vec<Rc<OpCounters>> = Vec::new();
    if has_breaker {
        for (j, clause) in f.clauses[cut + 1..].iter().enumerate() {
            source = clause_source(
                clause,
                flwor_plan(f, cut + 1 + j),
                join_at(f, &cells, cut + 1 + j),
                source,
            );
            if profiling {
                let c = Rc::new(OpCounters::default());
                down_counters.push(Rc::clone(&c));
                source = Box::new(Instrumented {
                    input: source,
                    counters: c,
                });
            }
        }
    }
    let sink = ReturnAt {
        at: f.return_at,
        expr: &f.return_expr,
    };
    let (seq, sink_stats) = sink.execute(source, interp, env)?;
    if let (Some(profiler), Some(clock), Some(start)) = (&profiler, &clock, total_start) {
        let total = clock.now_nanos().saturating_sub(start);
        profiler.add_span(parallel_span(
            start,
            start + total,
            worker_spans,
            merge_start.unwrap_or_default(),
            merge_nanos,
        ));
        profiler.record(build_parallel_profile(
            f,
            cut,
            workers,
            &snaps,
            worker_loop_nanos,
            merge_nanos,
            replay_counter
                .as_ref()
                .map(|c| (c.as_ref(), down_counters.as_slice())),
            Some(sink_stats),
            total,
        ));
    }
    Ok(seq)
}

/// One worker thread: claim morsels until the input (or the error
/// floor) is exhausted, streaming each through a private chain into the
/// breaker-side accumulator.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    interp: Interpreter,
    f: &FlworIr,
    cut: usize,
    items: &[Item],
    morsel_count: usize,
    next: &AtomicUsize,
    error_floor: &AtomicUsize,
    slots: Vec<Sequence>,
    focus: Option<Focus>,
    profiling: bool,
    cells: &[Option<JoinCell>],
) -> WorkerReport {
    let clock = profiling.then(|| Arc::clone(interp.dynamic.clock()));
    let loop_start = clock.as_ref().map(|c| c.now_nanos());
    let mut env = Env { slots, focus };
    let counters: Option<Vec<Rc<OpCounters>>> =
        profiling.then(|| (0..cut).map(|_| Rc::new(OpCounters::default())).collect());
    let mut acc = match (f.clauses.get(cut), f.return_at) {
        (None, None) => Acc::Seqs(Vec::new()),
        (None, Some(_)) => Acc::Tuples(Vec::new()),
        (Some(ClauseIr::GroupBy(g)), _) => Acc::Groups {
            g,
            groups: Vec::new(),
            index: GroupIndex::new(),
            scratch: String::new(),
            consumed: 0,
        },
        (Some(ClauseIr::OrderBy(ob)), _) => match ob.limit {
            Some(k) => Acc::TopK {
                heap: TopKHeap::new(&ob.specs, k),
                pruned: 0,
            },
            None => Acc::Runs {
                entries: Vec::new(),
                specs: &ob.specs,
            },
        },
        (Some(_), _) => unreachable!("cut points at a breaker clause"),
    };
    let mut result: Result<(), (usize, EngineError)> = Ok(());
    loop {
        let m = next.fetch_add(1, AtomicOrdering::Relaxed);
        // Claims are monotonic, so every index below a claimed `m` is
        // already owned by someone; past the error floor there is no
        // point doing work whose output will be discarded.
        if m >= morsel_count || m > error_floor.load(AtomicOrdering::Relaxed) {
            break;
        }
        if let Err(e) = process_morsel(
            &interp, f, cut, items, m, &mut env, &mut acc, &counters, cells,
        ) {
            error_floor.fetch_min(m, AtomicOrdering::Relaxed);
            result = Err((m, e));
            break;
        }
    }
    // Fold breaker-local tallies into this worker's private stats sink
    // exactly once (the coordinator merges each sink with one
    // add_snapshot call).
    let output = match result {
        Err(e) => Err(e),
        Ok(()) => match acc {
            Acc::Seqs(v) => Ok(WorkerOutput::Seqs(v)),
            Acc::Tuples(v) => Ok(WorkerOutput::Tuples(v)),
            Acc::Groups {
                groups, consumed, ..
            } => {
                interp.stats.add_tuples_grouped(consumed);
                Ok(WorkerOutput::Groups(groups))
            }
            Acc::TopK { heap, pruned } => {
                interp.stats.add_tuples_pruned_topk(pruned);
                Ok(WorkerOutput::Runs(heap.into_entries()))
            }
            Acc::Runs { mut entries, specs } => match sort_tagged(&mut entries, specs) {
                Ok(()) => Ok(WorkerOutput::Runs(entries)),
                Err(e) => {
                    let m = entries.iter().map(|e| e.1 .0).min().unwrap_or(0);
                    error_floor.fetch_min(m, AtomicOrdering::Relaxed);
                    Err((m, e))
                }
            },
        },
    };
    let counters = counters
        .map(|cs| {
            cs.iter()
                .map(|c| CounterSnap {
                    batches: c.batches.get(),
                    tuples_out: c.tuples_out.get(),
                    cum_nanos: c.cum_nanos.get(),
                })
                .collect()
        })
        .unwrap_or_default();
    let (loop_nanos, loop_span) = match (&clock, loop_start) {
        (Some(c), Some(s)) => {
            let end = c.now_nanos();
            (end.saturating_sub(s), Some((s, end)))
        }
        _ => (0, None),
    };
    // Drain this thread's sequence-copy counters into the worker's
    // private sink so the coordinator's single add_snapshot merge picks
    // them up (the thread dies with the scope; counts would be lost).
    let (copied, shared) = xqa_xdm::take_seq_counters();
    interp.stats.add_seq_counters(copied, shared);
    WorkerReport {
        output,
        counters,
        loop_nanos,
        loop_span,
    }
}

/// Stream one morsel through a fresh clone of the pre-breaker chain
/// into the worker's accumulator. The seeded `ForScan` starts its `at`
/// ordinals at the morsel's global offset, so positional variables are
/// identical to the serial run.
#[allow(clippy::too_many_arguments)]
fn process_morsel(
    interp: &Interpreter,
    f: &FlworIr,
    cut: usize,
    items: &[Item],
    m: usize,
    env: &mut Env,
    acc: &mut Acc,
    counters: &Option<Vec<Rc<OpCounters>>>,
    cells: &[Option<JoinCell>],
) -> EngineResult<()> {
    let lo = m * MORSEL;
    let hi = items.len().min(lo + MORSEL);
    // ForScan owns its item iterator, so the morsel slice is cloned
    // into the worker here; `Item` is an Arc-backed handle.
    let morsel = Sequence::from_slice(&items[lo..hi]);
    let ClauseIr::For {
        slot,
        at_slot,
        ty,
        expr,
    } = &f.clauses[0]
    else {
        unreachable!("parallel-eligible FLWOR starts with a for clause");
    };
    let mut source: BoxSource = Box::new(ForScan {
        input: Box::new(Singleton { done: true }),
        slot: *slot,
        at_slot: *at_slot,
        ty: ty.as_ref(),
        expr,
        expr_eval: ExprEval::new(flwor_plan(f, 0)),
        batch: Vec::new().into_iter(),
        items: morsel.into_iter(),
        item_pos: lo as i64,
        base: Tuple::default(),
        input_done: true,
    });
    if let Some(cs) = counters {
        source = Box::new(Instrumented {
            input: source,
            counters: Rc::clone(&cs[0]),
        });
    }
    for (i, clause) in f.clauses[1..cut].iter().enumerate() {
        source = clause_source(
            clause,
            flwor_plan(f, i + 1),
            join_at(f, cells, i + 1),
            source,
        );
        if let Some(cs) = counters {
            source = Box::new(Instrumented {
                input: source,
                counters: Rc::clone(&cs[i + 1]),
            });
        }
    }
    let mut seq_in_morsel = 0usize;
    match acc {
        Acc::Seqs(frags) => {
            let mut frag = SequenceBuilder::new();
            while let Some(batch) = source.next_batch(interp, env)? {
                for t in batch {
                    t.apply(env);
                    frag.append(interp.eval(&f.return_expr, env)?);
                }
            }
            frags.push((m, frag.build()));
        }
        Acc::Tuples(tuples) => {
            while let Some(batch) = source.next_batch(interp, env)? {
                for t in batch {
                    tuples.push(((m, seq_in_morsel), t));
                    seq_in_morsel += 1;
                }
            }
        }
        Acc::Groups {
            g,
            groups,
            index,
            scratch,
            consumed,
        } => {
            while let Some(batch) = source.next_batch(interp, env)? {
                *consumed += batch.len() as u64;
                for t in batch {
                    t.apply(env);
                    let mut key_vals: Vec<Sequence> = Vec::with_capacity(g.keys.len());
                    for key in &g.keys {
                        key_vals.push(interp.eval(&key.expr, env)?);
                    }
                    let tag = (m, seq_in_morsel);
                    seq_in_morsel += 1;
                    let mut nest_vals: Vec<(Tag, OrderKeys, Sequence)> =
                        Vec::with_capacity(g.nests.len());
                    for nest in &g.nests {
                        let value = interp.eval(&nest.expr, env)?;
                        let okeys = match &nest.order_by {
                            Some(ob) => interp.order_keys(&ob.specs, env)?,
                            None => Vec::new(),
                        };
                        nest_vals.push((tag, okeys, value));
                    }
                    let hit = index
                        .find_or_insert_buf(scratch, &key_vals, groups.len(), |i| {
                            groups[i].keys.as_slice()
                        })
                        .ok();
                    match hit {
                        Some(gi) => {
                            for (slot, entry) in groups[gi].nests.iter_mut().zip(nest_vals) {
                                slot.push(entry);
                            }
                        }
                        None => {
                            groups.push(WGroup {
                                keys: key_vals,
                                base: t,
                                first: tag,
                                nests: nest_vals.into_iter().map(|e| vec![e]).collect(),
                            });
                        }
                    }
                }
            }
        }
        Acc::TopK { heap, pruned } => {
            while let Some(batch) = source.next_batch(interp, env)? {
                for t in batch {
                    t.apply(env);
                    let keys = interp.order_keys(heap.specs, env)?;
                    let was_full = heap.saturated();
                    heap.offer(keys, (m, seq_in_morsel), t)?;
                    seq_in_morsel += 1;
                    if was_full {
                        *pruned += 1;
                    }
                }
            }
        }
        Acc::Runs { entries, specs } => {
            while let Some(batch) = source.next_batch(interp, env)? {
                for t in batch {
                    t.apply(env);
                    let keys = interp.order_keys(specs, env)?;
                    entries.push((keys, (m, seq_in_morsel), t));
                    seq_in_morsel += 1;
                }
            }
        }
    }
    Ok(())
}

/// The span timeline of a parallel execution: the real loop interval
/// of every morsel worker (attributed by worker id) plus the
/// coordinator's merge interval, under one pipeline root.
fn parallel_span(
    start_nanos: u64,
    end_nanos: u64,
    workers: Vec<Span>,
    merge_start: u64,
    merge_nanos: u64,
) -> Span {
    let mut root = Span::leaf("pipeline", start_nanos, end_nanos);
    root.children = workers;
    root.children
        .push(Span::leaf("merge", merge_start, merge_start + merge_nanos));
    root
}

/// Assemble the profile of a parallel pipeline execution. Rows for the
/// worker-side chain sum the per-worker counters, so their batch and
/// tuple counts are exact and their nanos are *CPU time across all
/// workers* (the pipeline total stays wall time; `workers` in the
/// profile flags the discrepancy for renderers). The breaker row, when
/// present, collects the workers' accumulator time, the coordinator
/// merge and the replay drain.
#[allow(clippy::too_many_arguments)]
fn build_parallel_profile(
    f: &FlworIr,
    cut: usize,
    workers: usize,
    snaps: &[Vec<CounterSnap>],
    worker_loop_nanos: u64,
    merge_nanos: u64,
    breaker: Option<(&OpCounters, &[Rc<OpCounters>])>,
    sink_stats: Option<SinkStats>,
    total_nanos: u64,
) -> PipelineProfile {
    let mut ops = Vec::with_capacity(f.clauses.len() + 1);
    let mut upstream_out = 1u64;
    for (i, clause) in f.clauses[..cut].iter().enumerate() {
        let mut batches = 0u64;
        let mut out = 0u64;
        let mut self_nanos = 0u64;
        for w in snaps {
            batches += w[i].batches;
            out += w[i].tuples_out;
            let prev = if i > 0 { w[i - 1].cum_nanos } else { 0 };
            self_nanos += w[i].cum_nanos.saturating_sub(prev);
        }
        ops.push(OpProfile {
            kind: clause_op_kind(clause, join_ir(f, i)),
            detail: clause_op_detail(clause, join_ir(f, i)),
            batches,
            tuples_in: upstream_out,
            tuples_out: out,
            nanos: self_nanos,
            estimate: f.estimates.get(i).copied().flatten(),
        });
        upstream_out = out;
    }
    // Worker time not spent pulling the chain went into the breaker
    // accumulator (or, with no breaker, the return expression).
    let top_cum: u64 = snaps.iter().map(|w| w[cut - 1].cum_nanos).sum();
    let acc_nanos = worker_loop_nanos.saturating_sub(top_cum);
    if let Some((replay, down)) = breaker {
        let clause = &f.clauses[cut];
        ops.push(OpProfile {
            kind: clause_op_kind(clause, join_ir(f, cut)),
            detail: clause_op_detail(clause, join_ir(f, cut)),
            batches: replay.batches.get(),
            tuples_in: upstream_out,
            tuples_out: replay.tuples_out.get(),
            nanos: acc_nanos + merge_nanos + replay.cum_nanos.get(),
            estimate: f.estimates.get(cut).copied().flatten(),
        });
        upstream_out = replay.tuples_out.get();
        let mut prev_cum = replay.cum_nanos.get();
        for (j, (clause, c)) in f.clauses[cut + 1..].iter().zip(down).enumerate() {
            let cum = c.cum_nanos.get();
            ops.push(OpProfile {
                kind: clause_op_kind(clause, join_ir(f, cut + 1 + j)),
                detail: clause_op_detail(clause, join_ir(f, cut + 1 + j)),
                batches: c.batches.get(),
                tuples_in: upstream_out,
                tuples_out: c.tuples_out.get(),
                nanos: cum.saturating_sub(prev_cum),
                estimate: f.estimates.get(cut + 1 + j).copied().flatten(),
            });
            upstream_out = c.tuples_out.get();
            prev_cum = cum;
        }
    }
    let (sink_batches, sink_tuples) = match sink_stats {
        Some(s) => (s.batches, s.tuples),
        // No sink ran on the coordinator: the workers evaluated the
        // return expression; mirror the chain's top row.
        None => (snaps.iter().map(|w| w[cut - 1].batches).sum(), upstream_out),
    };
    let accounted: u64 = ops.iter().map(|o| o.nanos).sum();
    let sink_nanos = match sink_stats {
        None => acc_nanos + merge_nanos,
        Some(_) => total_nanos.saturating_sub(accounted),
    };
    ops.push(OpProfile {
        kind: OpKind::ReturnAt,
        detail: String::new(),
        batches: sink_batches,
        tuples_in: upstream_out,
        tuples_out: sink_tuples,
        nanos: sink_nanos,
        estimate: f.estimates.get(f.clauses.len()).copied().flatten(),
    });
    PipelineProfile {
        executions: 1,
        workers: workers as u64,
        ops,
    }
}

/// The pipeline sink: pulls tuples, binds the §4 output ordinal
/// (`return at $rank`, numbered *after* any order by) and evaluates the
/// return expression per tuple.
struct ReturnAt<'p> {
    at: Option<Slot>,
    expr: &'p Ir,
}

/// What the sink consumed: the operator-level counters for `ReturnAt`'s
/// row in the profile.
#[derive(Debug, Default, Clone, Copy)]
struct SinkStats {
    batches: u64,
    tuples: u64,
}

impl ReturnAt<'_> {
    fn execute(
        &self,
        mut source: BoxSource<'_>,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<(Sequence, SinkStats)> {
        let mut out = SequenceBuilder::new();
        let mut stats = SinkStats::default();
        let mut ordinal = 0i64;
        while let Some(batch) = source.next_batch(interp, env)? {
            stats.batches += 1;
            stats.tuples += batch.len() as u64;
            for t in batch {
                t.apply(env);
                ordinal += 1;
                if let Some(at) = self.at {
                    env.slots[at] = Sequence::one(ordinal);
                }
                out.append(interp.eval(self.expr, env)?);
            }
        }
        Ok((out.build(), stats))
    }

    /// Streaming variant of [`execute`](Self::execute): the return
    /// expression's output for each input batch is built into its own
    /// small `Sequence` and emitted as soon as the batch is processed,
    /// so the first result bytes leave before later batches are pulled.
    fn stream(
        &self,
        mut source: BoxSource<'_>,
        interp: &Interpreter,
        env: &mut Env,
        emit: &mut EmitBatch,
    ) -> EngineResult<(u64, SinkStats)> {
        let mut stats = SinkStats::default();
        let mut ordinal = 0i64;
        let mut items = 0u64;
        while let Some(batch) = source.next_batch(interp, env)? {
            stats.batches += 1;
            stats.tuples += batch.len() as u64;
            let mut out = SequenceBuilder::new();
            for t in batch {
                t.apply(env);
                ordinal += 1;
                if let Some(at) = self.at {
                    env.slots[at] = Sequence::one(ordinal);
                }
                out.append(interp.eval(self.expr, env)?);
            }
            let seq = out.build();
            if !seq.is_empty() {
                items += seq.len() as u64;
                emit(&seq)?;
            }
        }
        Ok((items, stats))
    }
}
