//! The pull-based streaming FLWOR pipeline.
//!
//! The materializing evaluator in [`crate::flwor`] realizes the paper's
//! §3.1 tuple stream as a `Vec<Tuple>` snapshot after every clause,
//! cloning the full slot frame per tuple. This module replaces it with a
//! Volcano-style operator pipeline (the architecture VXQuery showed is
//! what makes an XQuery engine scale):
//!
//! - [`TupleSource`] is the pull interface. Operators exchange *batches*
//!   of tuples ([`BATCH`] at a time) to amortize dynamic dispatch.
//! - A [`Tuple`] is copy-on-write: a small delta of `(slot, value)`
//!   bindings layered over the shared parent frame, instead of a full
//!   frame snapshot. Cloning a tuple clones a handful of `Arc`s.
//! - `ForScan`, `LetBind`, `Filter`, `CountBind` and `WindowScan`
//!   stream; [`GroupConsume`] and [`OrderBy`] are pipeline *breakers*
//!   that drain their input before emitting.
//! - When the top-k rewrite ([`crate::rewrite::pushdown_topk`]) has set
//!   [`OrderByIr::limit`], `OrderBy` keeps a bounded binary heap of k
//!   tuples instead of sorting the whole input: O(n log k) comparisons,
//!   O(k) kept tuples.
//!
//! In-place slot writes are sound because the compiler never reuses slot
//! numbers: dropping a binding from scope only hides it, so every
//! binding in a body has a globally unique slot ([`Ir::Quantified`]
//! evaluation already relies on the same contract).

use crate::error::{EngineError, EngineResult};
use crate::eval::{Env, Interpreter};
use crate::ir::*;
use crate::keys::GroupIndex;
use crate::profile::{OpKind, OpProfile, PipelineProfile};
use crate::types::matches_seq_type;
use std::cell::Cell;
use std::cmp::Ordering;
use std::rc::Rc;
use std::sync::Arc;
use xqa_xdm::{deep_equal, effective_boolean_value, ErrorCode, Item, Sequence};

use crate::flwor::{compare_order_keys, sort_keyed, OrderKeys};

/// Tuples per batch. Large enough to amortize the virtual `next_batch`
/// call, small enough that a streaming chain stays cache-resident.
pub(crate) const BATCH: usize = 64;

/// A copy-on-write tuple: bindings this FLWOR has made, layered over the
/// shared parent frame. Slots absent from the delta hold their parent
/// values in `env.slots`, which no pipeline operator ever overwrites.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tuple {
    delta: Vec<(Slot, Arc<Sequence>)>,
}

impl Tuple {
    /// Bind `slot` in this tuple (replacing an existing binding: the
    /// compiler can re-bind a slot only for the same variable).
    fn bind(&mut self, slot: Slot, value: Arc<Sequence>) {
        for entry in &mut self.delta {
            if entry.0 == slot {
                entry.1 = value;
                return;
            }
        }
        self.delta.push((slot, value));
    }

    /// Install this tuple's bindings into the frame before evaluating a
    /// per-tuple expression. O(|delta|) `Arc` clones.
    fn apply(&self, env: &mut Env) {
        for (slot, value) in &self.delta {
            env.slots[*slot] = Arc::clone(value);
        }
    }
}

/// The Volcano-style pull interface: `Ok(Some(batch))` (possibly empty)
/// while tuples remain, `Ok(None)` once exhausted.
pub(crate) trait TupleSource {
    /// Pull the next batch of tuples.
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>>;
}

type BoxSource<'p> = Box<dyn TupleSource + 'p>;

/// Evaluate a FLWOR through the streaming pipeline. When profiling is
/// enabled on the dynamic context, every operator is wrapped in an
/// [`Instrumented`] decorator and the measured chain is recorded into
/// the context's profiler after the run.
pub(crate) fn run(interp: &Interpreter, f: &FlworIr, env: &mut Env) -> EngineResult<Sequence> {
    debug_assert_eq!(f.plan.len(), f.clauses.len());
    let profiler = interp.dynamic.profiler().cloned();
    let mut counters: Vec<Rc<OpCounters>> = Vec::new();
    let mut source: BoxSource = Box::new(Singleton { done: false });
    for clause in &f.clauses {
        source = match clause {
            ClauseIr::For {
                slot,
                at_slot,
                ty,
                expr,
            } => Box::new(ForScan {
                input: source,
                slot: *slot,
                at_slot: *at_slot,
                ty: ty.as_ref(),
                expr,
                batch: Vec::new().into_iter(),
                items: Vec::new().into_iter(),
                item_pos: 0,
                base: Tuple::default(),
                input_done: false,
            }),
            ClauseIr::Let { slot, ty, expr } => Box::new(LetBind {
                input: source,
                slot: *slot,
                ty: ty.as_ref(),
                expr,
            }),
            ClauseIr::Where(cond) => Box::new(Filter {
                input: source,
                cond,
            }),
            ClauseIr::Count { slot } => Box::new(CountBind {
                input: source,
                slot: *slot,
                n: 0,
            }),
            ClauseIr::Window(w) => Box::new(WindowScan { input: source, w }),
            ClauseIr::GroupBy(g) => Box::new(GroupConsume {
                input: source,
                g,
                output: Vec::new().into_iter(),
                consumed: false,
            }),
            ClauseIr::OrderBy(ob) => Box::new(OrderBy {
                input: source,
                ob,
                output: Vec::new().into_iter(),
                consumed: false,
            }),
        };
        if profiler.is_some() {
            let c = Rc::new(OpCounters::default());
            counters.push(Rc::clone(&c));
            source = Box::new(Instrumented {
                input: source,
                counters: c,
            });
        }
    }
    let sink = ReturnAt {
        at: f.return_at,
        expr: &f.return_expr,
    };
    match profiler {
        None => sink.execute(source, interp, env).map(|(seq, _)| seq),
        Some(profiler) => {
            let clock = Arc::clone(interp.dynamic.clock());
            let start = clock.now_nanos();
            let (seq, sink_stats) = sink.execute(source, interp, env)?;
            let total = clock.now_nanos().saturating_sub(start);
            profiler.record(build_profile(f, &counters, sink_stats, total));
            Ok(seq)
        }
    }
}

/// Interior-mutable counters for one instrumented operator. `Rc<Cell>`
/// (not atomics) because one pipeline runs on one thread and
/// [`TupleSource`] is not `Send`.
#[derive(Debug, Default)]
struct OpCounters {
    batches: Cell<u64>,
    tuples_out: Cell<u64>,
    /// Cumulative time spent in this operator *and everything upstream*
    /// of it (`next_batch` pulls recursively); self time is recovered by
    /// subtracting the input operator's cumulative time.
    cum_nanos: Cell<u64>,
}

/// Decorator that meters the operator below it: batches, tuples and
/// wall time per `next_batch` call, read from the injected clock.
struct Instrumented<'p> {
    input: BoxSource<'p>,
    counters: Rc<OpCounters>,
}

impl TupleSource for Instrumented<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let clock = interp.dynamic.clock();
        let start = clock.now_nanos();
        let result = self.input.next_batch(interp, env);
        let elapsed = clock.now_nanos().saturating_sub(start);
        let c = &self.counters;
        c.cum_nanos.set(c.cum_nanos.get() + elapsed);
        if let Ok(Some(batch)) = &result {
            c.batches.set(c.batches.get() + 1);
            c.tuples_out.set(c.tuples_out.get() + batch.len() as u64);
        }
        result
    }
}

/// Assemble the measured operator chain for one pipeline execution.
/// Self time per operator = its cumulative time minus its input's;
/// tuples_in = the input operator's tuples_out (the `Singleton` root
/// seeds exactly one tuple).
fn build_profile(
    f: &FlworIr,
    counters: &[Rc<OpCounters>],
    sink_stats: SinkStats,
    total_nanos: u64,
) -> PipelineProfile {
    let mut ops = Vec::with_capacity(counters.len() + 1);
    let mut upstream_out = 1u64;
    let mut upstream_cum = 0u64;
    for (clause, c) in f.clauses.iter().zip(counters) {
        let cum = c.cum_nanos.get();
        ops.push(OpProfile {
            kind: clause_op_kind(clause),
            detail: clause_op_detail(clause),
            batches: c.batches.get(),
            tuples_in: upstream_out,
            tuples_out: c.tuples_out.get(),
            nanos: cum.saturating_sub(upstream_cum),
        });
        upstream_out = c.tuples_out.get();
        upstream_cum = cum;
    }
    ops.push(OpProfile {
        kind: OpKind::ReturnAt,
        detail: String::new(),
        batches: sink_stats.batches,
        tuples_in: upstream_out,
        tuples_out: sink_stats.tuples,
        nanos: total_nanos.saturating_sub(upstream_cum),
    });
    PipelineProfile { executions: 1, ops }
}

fn clause_op_kind(clause: &ClauseIr) -> OpKind {
    match clause {
        ClauseIr::For { .. } => OpKind::ForScan,
        ClauseIr::Let { .. } => OpKind::LetBind,
        ClauseIr::Where(_) => OpKind::Filter,
        ClauseIr::Count { .. } => OpKind::CountBind,
        ClauseIr::Window(_) => OpKind::WindowScan,
        ClauseIr::GroupBy(_) => OpKind::GroupConsume,
        ClauseIr::OrderBy(_) => OpKind::OrderBy,
    }
}

fn clause_op_detail(clause: &ClauseIr) -> String {
    match clause {
        ClauseIr::OrderBy(ob) => match ob.limit {
            Some(k) => format!("limit={k}"),
            None => String::new(),
        },
        _ => String::new(),
    }
}

/// The pipeline root: one tuple with no bindings (the incoming frame).
struct Singleton {
    done: bool,
}

impl TupleSource for Singleton {
    fn next_batch(&mut self, _: &Interpreter, _: &mut Env) -> EngineResult<Option<Vec<Tuple>>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(vec![Tuple::default()]))
    }
}

/// `for $v (at $i)? in e`: fan out one tuple per item. Resumable: a
/// half-expanded binding sequence carries over to the next batch, so a
/// million-item `for` still emits [`BATCH`]-sized batches.
struct ForScan<'p> {
    input: BoxSource<'p>,
    slot: Slot,
    at_slot: Option<Slot>,
    ty: Option<&'p SeqTypeIr>,
    expr: &'p Ir,
    batch: std::vec::IntoIter<Tuple>,
    items: std::vec::IntoIter<Item>,
    item_pos: i64,
    base: Tuple,
    input_done: bool,
}

impl TupleSource for ForScan<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let mut out = Vec::new();
        loop {
            for item in self.items.by_ref() {
                if let Some(ty) = self.ty {
                    let single = [item.clone()];
                    if !matches_seq_type(&single, ty) {
                        return Err(EngineError::dynamic(
                            ErrorCode::XPTY0004,
                            "for-binding value does not match its declared type",
                        ));
                    }
                }
                self.item_pos += 1;
                let mut t = self.base.clone();
                t.bind(self.slot, Arc::new(vec![item]));
                if let Some(at) = self.at_slot {
                    t.bind(at, Arc::new(vec![Item::from(self.item_pos)]));
                }
                out.push(t);
                if out.len() >= BATCH {
                    interp.dynamic.stats.add_tuples_produced(out.len() as u64);
                    return Ok(Some(out));
                }
            }
            match self.batch.next() {
                Some(base) => {
                    base.apply(env);
                    self.items = interp.eval(self.expr, env)?.into_iter();
                    self.item_pos = 0;
                    self.base = base;
                }
                None if self.input_done => {
                    interp.dynamic.stats.add_tuples_produced(out.len() as u64);
                    return Ok(if out.is_empty() { None } else { Some(out) });
                }
                None => match self.input.next_batch(interp, env)? {
                    Some(b) => self.batch = b.into_iter(),
                    None => self.input_done = true,
                },
            }
        }
    }
}

/// `let $v := e`: 1:1 streaming binder.
struct LetBind<'p> {
    input: BoxSource<'p>,
    slot: Slot,
    ty: Option<&'p SeqTypeIr>,
    expr: &'p Ir,
}

impl TupleSource for LetBind<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(mut batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        for t in &mut batch {
            t.apply(env);
            let seq = interp.eval(self.expr, env)?;
            if let Some(ty) = self.ty {
                if !matches_seq_type(&seq, ty) {
                    return Err(EngineError::dynamic(
                        ErrorCode::XPTY0004,
                        "let-binding value does not match its declared type",
                    ));
                }
            }
            t.bind(self.slot, Arc::new(seq));
        }
        Ok(Some(batch))
    }
}

/// `where e`: streaming filter.
struct Filter<'p> {
    input: BoxSource<'p>,
    cond: &'p Ir,
}

impl TupleSource for Filter<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        let before = batch.len();
        let mut out = Vec::with_capacity(before);
        for t in batch {
            t.apply(env);
            let v = interp.eval(self.cond, env)?;
            if effective_boolean_value(&v).map_err(EngineError::from)? {
                out.push(t);
            }
        }
        interp
            .dynamic
            .stats
            .add_tuples_pruned_filter((before - out.len()) as u64);
        Ok(Some(out))
    }
}

/// `count $v`: bind the 1-based ordinal at this pipeline point.
struct CountBind<'p> {
    input: BoxSource<'p>,
    slot: Slot,
    n: i64,
}

impl TupleSource for CountBind<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(mut batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        for t in &mut batch {
            self.n += 1;
            t.bind(self.slot, Arc::new(vec![Item::from(self.n)]));
        }
        Ok(Some(batch))
    }
}

/// Window clause: delegates the boundary-condition machinery to the
/// materializing [`Interpreter::apply_window`] one input tuple at a
/// time, then converts the full-frame outputs back into deltas (only
/// the window slot and the condition-variable slots can have changed).
/// Windows are not a hot path; correctness over allocation thrift.
struct WindowScan<'p> {
    input: BoxSource<'p>,
    w: &'p WindowIr,
}

impl TupleSource for WindowScan<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        let Some(batch) = self.input.next_batch(interp, env)? else {
            return Ok(None);
        };
        let mut out = Vec::new();
        for t in batch {
            t.apply(env);
            let frame = env.slots.clone();
            let windows = interp.apply_window(self.w, vec![frame.clone()], env)?;
            // apply_window leaves the frame moved-out; restore it.
            env.slots = frame;
            for full in windows {
                let mut nt = t.clone();
                bind_from_frame(&mut nt, &full, self.w.slot);
                bind_cond_slots(&mut nt, &full, &self.w.start);
                if let Some(end) = &self.w.end {
                    bind_cond_slots(&mut nt, &full, end);
                }
                out.push(nt);
            }
        }
        interp.dynamic.stats.add_tuples_produced(out.len() as u64);
        Ok(Some(out))
    }
}

fn bind_from_frame(t: &mut Tuple, frame: &[Arc<Sequence>], slot: Slot) {
    t.bind(slot, Arc::clone(&frame[slot]));
}

fn bind_cond_slots(t: &mut Tuple, frame: &[Arc<Sequence>], cond: &WindowCondIr) {
    for slot in [
        cond.item_slot,
        cond.at_slot,
        cond.previous_slot,
        cond.next_slot,
    ]
    .into_iter()
    .flatten()
    {
        bind_from_frame(t, frame, slot);
    }
}

/// `group by ... nest ...`: pipeline breaker. Drains the input into a
/// hash aggregation ([`GroupIndex`], scratch-buffer key building), then
/// emits one tuple per group in first-appearance order.
struct GroupConsume<'p> {
    input: BoxSource<'p>,
    g: &'p GroupByIr,
    output: std::vec::IntoIter<Tuple>,
    consumed: bool,
}

struct GroupState {
    /// One key sequence per grouping variable.
    keys: Vec<Sequence>,
    /// The first member tuple (source of outer-variable values for the
    /// output tuple; pre-group slots in it are hidden by the compiler's
    /// §3.2 scope rule).
    base: Tuple,
    /// Collected nest entries: per nest binding, per member.
    nests: Vec<Vec<(OrderKeys, Sequence)>>,
}

impl GroupConsume<'_> {
    fn consume(&mut self, interp: &Interpreter, env: &mut Env) -> EngineResult<()> {
        let g = self.g;
        let stats = &interp.dynamic.stats;
        let has_using = g.keys.iter().any(|k| k.using.is_some());
        let mut groups: Vec<GroupState> = Vec::new();
        let mut index = GroupIndex::new();
        let mut scratch = String::new();
        let mut consumed = 0u64;

        while let Some(batch) = self.input.next_batch(interp, env)? {
            consumed += batch.len() as u64;
            for t in batch {
                t.apply(env);
                let mut key_vals: Vec<Sequence> = Vec::with_capacity(g.keys.len());
                for key in &g.keys {
                    key_vals.push(interp.eval(&key.expr, env)?);
                }
                let mut nest_vals: Vec<(OrderKeys, Sequence)> = Vec::with_capacity(g.nests.len());
                for nest in &g.nests {
                    let value = interp.eval(&nest.expr, env)?;
                    let okeys = match &nest.order_by {
                        Some(ob) => interp.order_keys(&ob.specs, env)?,
                        None => Vec::new(),
                    };
                    nest_vals.push((okeys, value));
                }

                let group_idx = if has_using {
                    // Custom equality (§3.3): linear scan with the
                    // user-supplied comparator for `using` keys and
                    // deep-equal for the rest.
                    let mut found = None;
                    'groups: for (gi, group) in groups.iter().enumerate() {
                        for (key, (stored, candidate)) in
                            g.keys.iter().zip(group.keys.iter().zip(&key_vals))
                        {
                            let equal = match key.using {
                                Some(fid) => {
                                    let result = interp.call_user_values(
                                        fid,
                                        vec![stored.clone(), candidate.clone()],
                                    )?;
                                    effective_boolean_value(&result).map_err(EngineError::from)?
                                }
                                None => deep_equal(stored, candidate),
                            };
                            if !equal {
                                continue 'groups;
                            }
                        }
                        found = Some(gi);
                        break;
                    }
                    found
                } else {
                    index
                        .find_or_insert_buf(&mut scratch, &key_vals, groups.len(), |i| {
                            groups[i].keys.as_slice()
                        })
                        .ok()
                };

                match group_idx {
                    Some(gi) => {
                        for (slot, entry) in groups[gi].nests.iter_mut().zip(nest_vals) {
                            slot.push(entry);
                        }
                    }
                    None => {
                        groups.push(GroupState {
                            keys: key_vals,
                            base: t,
                            nests: nest_vals.into_iter().map(|e| vec![e]).collect(),
                        });
                    }
                }
            }
        }

        stats.add_tuples_grouped(consumed);
        stats.add_groups_emitted(groups.len() as u64);

        // One output tuple per group, in first-appearance order (stable,
        // matching the materializing path).
        let mut out = Vec::with_capacity(groups.len());
        for group in groups {
            let mut t = group.base;
            for (key, vals) in g.keys.iter().zip(group.keys) {
                t.bind(key.slot, Arc::new(vals));
            }
            for (nest, mut entries) in g.nests.iter().zip(group.nests) {
                if let Some(ob) = &nest.order_by {
                    sort_keyed(&mut entries, &ob.specs)?;
                }
                let mut seq = Vec::new();
                for (_, mut vals) in entries {
                    // Nest values concatenate into one flat sequence —
                    // "merged and lose their individual identity" (§3.1).
                    seq.append(&mut vals);
                }
                t.bind(nest.slot, Arc::new(seq));
            }
            out.push(t);
        }
        self.output = out.into_iter();
        Ok(())
    }
}

impl TupleSource for GroupConsume<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        if !self.consumed {
            self.consumed = true;
            self.consume(interp, env)?;
        }
        Ok(drain_batch(&mut self.output))
    }
}

/// `order by`: pipeline breaker. Full stable sort, or — when the top-k
/// rewrite set a limit — a bounded binary heap that keeps only the k
/// least tuples seen so far.
struct OrderBy<'p> {
    input: BoxSource<'p>,
    ob: &'p OrderByIr,
    output: std::vec::IntoIter<Tuple>,
    consumed: bool,
}

impl OrderBy<'_> {
    fn consume(&mut self, interp: &Interpreter, env: &mut Env) -> EngineResult<()> {
        let specs = &self.ob.specs;
        let sorted = match self.ob.limit {
            Some(k) => {
                let mut heap = TopKHeap::new(specs, k);
                let mut pruned = 0u64;
                while let Some(batch) = self.input.next_batch(interp, env)? {
                    for t in batch {
                        t.apply(env);
                        let keys = interp.order_keys(specs, env)?;
                        // An offer against a full heap prunes exactly one
                        // tuple: the newcomer (rejected) or an eviction.
                        let was_full = heap.saturated();
                        heap.offer(keys, t)?;
                        if was_full {
                            pruned += 1;
                        }
                    }
                }
                interp.dynamic.stats.add_tuples_pruned_topk(pruned);
                heap.into_sorted()?
            }
            None => {
                let mut keyed: Vec<(OrderKeys, Tuple)> = Vec::new();
                while let Some(batch) = self.input.next_batch(interp, env)? {
                    for t in batch {
                        t.apply(env);
                        let keys = interp.order_keys(specs, env)?;
                        keyed.push((keys, t));
                    }
                }
                sort_keyed(&mut keyed, specs)?;
                keyed.into_iter().map(|(_, t)| t).collect()
            }
        };
        self.output = sorted.into_iter();
        Ok(())
    }
}

impl TupleSource for OrderBy<'_> {
    fn next_batch(
        &mut self,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<Option<Vec<Tuple>>> {
        if !self.consumed {
            self.consumed = true;
            self.consume(interp, env)?;
        }
        Ok(drain_batch(&mut self.output))
    }
}

/// Emit up to [`BATCH`] tuples from a breaker's buffered output.
fn drain_batch(output: &mut std::vec::IntoIter<Tuple>) -> Option<Vec<Tuple>> {
    let mut out = Vec::with_capacity(BATCH.min(output.len()));
    for t in output.by_ref() {
        out.push(t);
        if out.len() >= BATCH {
            break;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// A bounded max-heap of the k least `(keys, seq_no)` entries, with a
/// *fallible* comparator (order keys of mixed type raise `XPTY0004`,
/// which `std::collections::BinaryHeap` cannot propagate — hence the
/// hand-rolled sift loops). `seq_no` breaks ties by input order, so the
/// survivors are exactly the first k of a full stable sort.
struct TopKHeap<'p> {
    specs: &'p [OrderSpecIr],
    k: usize,
    /// Max-heap: `entries[0]` is the greatest survivor.
    entries: Vec<(OrderKeys, usize, Tuple)>,
    seq: usize,
}

impl<'p> TopKHeap<'p> {
    fn new(specs: &'p [OrderSpecIr], k: usize) -> Self {
        TopKHeap {
            specs,
            k,
            entries: Vec::with_capacity(k.min(1024)),
            seq: 0,
        }
    }

    /// Whether the heap is full (every further offer prunes a tuple).
    fn saturated(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// Is entry `a` strictly greater than `b` under (keys, seq_no)?
    fn greater(
        &self,
        a: &(OrderKeys, usize, Tuple),
        b: &(OrderKeys, usize, Tuple),
    ) -> EngineResult<bool> {
        Ok(match compare_order_keys(&a.0, &b.0, self.specs)? {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => a.1 > b.1,
        })
    }

    /// Offer a tuple; returns whether it was kept.
    fn offer(&mut self, keys: OrderKeys, tuple: Tuple) -> EngineResult<bool> {
        let entry = (keys, self.seq, tuple);
        self.seq += 1;
        if self.k == 0 {
            return Ok(false);
        }
        if self.entries.len() < self.k {
            self.entries.push(entry);
            self.sift_up(self.entries.len() - 1)?;
            return Ok(true);
        }
        if self.greater(&entry, &self.entries[0])? {
            // Not among the k least: reject.
            return Ok(false);
        }
        self.entries[0] = entry;
        self.sift_down(0)?;
        Ok(true)
    }

    fn sift_up(&mut self, mut i: usize) -> EngineResult<()> {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.greater(&self.entries[i], &self.entries[parent])? {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn sift_down(&mut self, mut i: usize) -> EngineResult<()> {
        let n = self.entries.len();
        loop {
            let mut largest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < n && self.greater(&self.entries[child], &self.entries[largest])? {
                    largest = child;
                }
            }
            if largest == i {
                return Ok(());
            }
            self.entries.swap(i, largest);
            i = largest;
        }
    }

    /// The surviving tuples in ascending (keys, seq_no) order.
    fn into_sorted(self) -> EngineResult<Vec<Tuple>> {
        let mut entries = self.entries;
        let specs = self.specs;
        let mut failure: Option<EngineError> = None;
        entries.sort_by(|a, b| {
            if failure.is_some() {
                return Ordering::Equal;
            }
            match compare_order_keys(&a.0, &b.0, specs) {
                Ok(Ordering::Equal) => a.1.cmp(&b.1),
                Ok(ord) => ord,
                Err(e) => {
                    failure = Some(e);
                    Ordering::Equal
                }
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(entries.into_iter().map(|(_, _, t)| t).collect()),
        }
    }
}

/// The pipeline sink: pulls tuples, binds the §4 output ordinal
/// (`return at $rank`, numbered *after* any order by) and evaluates the
/// return expression per tuple.
struct ReturnAt<'p> {
    at: Option<Slot>,
    expr: &'p Ir,
}

/// What the sink consumed: the operator-level counters for `ReturnAt`'s
/// row in the profile.
#[derive(Debug, Default, Clone, Copy)]
struct SinkStats {
    batches: u64,
    tuples: u64,
}

impl ReturnAt<'_> {
    fn execute(
        &self,
        mut source: BoxSource<'_>,
        interp: &Interpreter,
        env: &mut Env,
    ) -> EngineResult<(Sequence, SinkStats)> {
        let mut out: Sequence = Vec::new();
        let mut stats = SinkStats::default();
        let mut ordinal = 0i64;
        while let Some(batch) = source.next_batch(interp, env)? {
            stats.batches += 1;
            stats.tuples += batch.len() as u64;
            for t in batch {
                t.apply(env);
                ordinal += 1;
                if let Some(at) = self.at {
                    env.slots[at] = Arc::new(vec![Item::from(ordinal)]);
                }
                out.extend(interp.eval(self.expr, env)?);
            }
        }
        Ok((out, stats))
    }
}
