//! Per-operator query profiling.
//!
//! The pipeline in [`crate::pipeline`] self-measures when profiling is
//! enabled on the [`crate::DynamicContext`]: every operator is wrapped
//! in an instrumentation decorator that counts batches and tuples and
//! accumulates wall time from a [`Clock`] injected through the context.
//! Production code uses the [`MonotonicClock`]; tests inject a
//! [`TickClock`] so golden `explain analyze` output is deterministic.
//!
//! One FLWOR execution produces a [`PipelineProfile`]; nested FLWORs
//! (or a FLWOR re-entered inside a function) record once per execution
//! and merge by plan signature into the context's [`QueryProfile`],
//! which renders as `explain analyze` text or machine-readable JSON.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A monotonic nanosecond clock, injectable so profiled runs can be
/// made deterministic in tests.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since an arbitrary per-clock origin; never decreases.
    fn now_nanos(&self) -> u64;
}

/// The production clock: [`Instant`] elapsed since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the moment of construction.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock: every reading advances by a fixed tick, so
/// profiled durations depend only on the number of clock reads — stable
/// across machines, suitable for golden tests.
#[derive(Debug)]
pub struct TickClock {
    tick_nanos: u64,
    reads: AtomicU64,
}

impl TickClock {
    /// A clock that advances `tick_nanos` per reading.
    pub fn new(tick_nanos: u64) -> TickClock {
        TickClock {
            tick_nanos,
            reads: AtomicU64::new(0),
        }
    }
}

impl Clock for TickClock {
    fn now_nanos(&self) -> u64 {
        let reads = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        reads * self.tick_nanos
    }
}

/// The operator kinds of the streaming pipeline (the eight planned
/// clause operators plus the `ReturnAt` sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `for $v (at $i)? in e`: fan-out scan.
    ForScan,
    /// `let $v := e`: 1:1 binder.
    LetBind,
    /// `where e`: streaming filter.
    Filter,
    /// `count $v`: ordinal binder.
    CountBind,
    /// Window clause scan.
    WindowScan,
    /// `group by`: hash-aggregation breaker.
    GroupConsume,
    /// `order by`: sort (or bounded-heap) breaker.
    OrderBy,
    /// Unnested join probe (`let` binding or existential filter):
    /// streams tuples against a once-materialized build table.
    HashJoin,
    /// The sink: binds `return at` ordinals, evaluates the return expr.
    ReturnAt,
}

impl OpKind {
    /// Every operator kind, in pipeline order of introduction.
    pub const ALL: [OpKind; 9] = [
        OpKind::ForScan,
        OpKind::LetBind,
        OpKind::Filter,
        OpKind::CountBind,
        OpKind::WindowScan,
        OpKind::GroupConsume,
        OpKind::OrderBy,
        OpKind::HashJoin,
        OpKind::ReturnAt,
    ];

    /// The operator's display name (matches `explain` plan rendering).
    pub fn as_str(&self) -> &'static str {
        match self {
            OpKind::ForScan => "ForScan",
            OpKind::LetBind => "LetBind",
            OpKind::Filter => "Filter",
            OpKind::CountBind => "CountBind",
            OpKind::WindowScan => "WindowScan",
            OpKind::GroupConsume => "GroupConsume",
            OpKind::OrderBy => "OrderBy",
            OpKind::HashJoin => "HashJoin",
            OpKind::ReturnAt => "ReturnAt",
        }
    }

    /// Whether this operator is a pipeline breaker that buffers its
    /// whole input before emitting (the `[materializes]` tag).
    pub fn materializes(&self) -> bool {
        matches!(self, OpKind::GroupConsume | OpKind::OrderBy)
    }
}

/// Measured counters for one operator across one pipeline's executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Which operator.
    pub kind: OpKind,
    /// Plan detail, e.g. `limit=10` for a bounded order-by.
    pub detail: String,
    /// Batches the operator emitted (for `ReturnAt`: batches consumed).
    pub batches: u64,
    /// Tuples the operator consumed from its input.
    pub tuples_in: u64,
    /// Tuples the operator emitted (for `ReturnAt`: output ordinals).
    pub tuples_out: u64,
    /// Self wall time (cumulative time minus the input's share).
    pub nanos: u64,
    /// The planner's row estimate for this operator (tuples it was
    /// expected to emit), stamped by [`crate::estimate::stamp_estimates`].
    /// `None` when the planner had no basis for an estimate.
    pub estimate: Option<u64>,
}

impl OpProfile {
    /// The plan label, matching `explain`'s rendering: operator name,
    /// detail, and the `[heap]` / `[materializes]` breaker tag.
    pub fn label(&self) -> String {
        let mut s = String::from(self.kind.as_str());
        if !self.detail.is_empty() {
            let _ = write!(s, "({})", self.detail);
        }
        match self.kind {
            OpKind::GroupConsume => s.push_str(" [materializes]"),
            OpKind::OrderBy if self.detail.is_empty() => s.push_str(" [materializes]"),
            OpKind::OrderBy => s.push_str(" [heap]"),
            _ => {}
        }
        s
    }

    /// Whether this operator buffered its input (breaker).
    pub fn materializes(&self) -> bool {
        self.kind.materializes()
    }

    /// The estimation quality factor `max(est/actual, actual/est)`,
    /// with both sides clamped to ≥ 1 so empty operators don't divide
    /// by zero. 1.0 is a perfect estimate; `None` when the planner
    /// recorded no estimate for this operator.
    pub fn q_error(&self) -> Option<f64> {
        let est = self.estimate?.max(1) as f64;
        let actual = self.tuples_out.max(1) as f64;
        Some((est / actual).max(actual / est))
    }

    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"op\":\"{}\",\"detail\":\"{}\",\"materializes\":{},\
             \"batches\":{},\"tuples_in\":{},\"tuples_out\":{},\"time_ns\":{}",
            self.kind.as_str(),
            self.detail,
            self.materializes(),
            self.batches,
            self.tuples_in,
            self.tuples_out,
            self.nanos
        );
        if let (Some(est), Some(q)) = (self.estimate, self.q_error()) {
            let _ = write!(s, ",\"est\":{est},\"q_error\":{q:.2}");
        }
        s.push('}');
        s
    }

    fn merge(&mut self, other: &OpProfile) {
        self.batches += other.batches;
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.nanos += other.nanos;
        // Repeated executions of one plan share one estimate.
        self.estimate = self.estimate.or(other.estimate);
    }
}

/// One node of a query's span timeline: a named interval on the
/// profiling clock, optionally attributed to a morsel worker, with
/// nested child spans. Serial pipelines lay their per-operator child
/// spans out cumulatively by self time (the pipeline ran the operators
/// interleaved, so exact per-operator intervals don't exist); parallel
/// pipelines report each worker's real loop interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What ran: `"pipeline #N"`, an operator label, `"worker"`,
    /// `"merge+replay"`, or a compile phase name.
    pub name: String,
    /// Interval start on the profiling clock (nanoseconds).
    pub start_nanos: u64,
    /// Interval end on the profiling clock (nanoseconds).
    pub end_nanos: u64,
    /// The morsel worker that ran this span, if it ran off-coordinator.
    pub worker: Option<u64>,
    /// Nested spans, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// A leaf span.
    pub fn leaf(name: impl Into<String>, start_nanos: u64, end_nanos: u64) -> Span {
        Span {
            name: name.into(),
            start_nanos,
            end_nanos,
            worker: None,
            children: Vec::new(),
        }
    }

    /// The span's duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// The machine-readable form (recursive).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{}",
            crate::trace::json_escape(&self.name),
            self.start_nanos,
            self.end_nanos
        );
        if let Some(w) = self.worker {
            let _ = write!(s, ",\"worker\":{w}");
        }
        if !self.children.is_empty() {
            let children: Vec<String> = self.children.iter().map(|c| c.to_json()).collect();
            let _ = write!(s, ",\"children\":[{}]", children.join(","));
        }
        s.push('}');
        s
    }
}

/// The worst cardinality misestimate of a profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct Misestimate {
    /// The offending operator's plan label.
    pub label: String,
    /// What the planner expected.
    pub estimated: u64,
    /// What the run produced.
    pub actual: u64,
    /// `max(est/actual, actual/est)`, clamped sides (see
    /// [`OpProfile::q_error`]).
    pub q_error: f64,
}

/// The measured operator chain of one FLWOR pipeline. Repeated
/// executions of the same plan (a FLWOR nested under an outer `for`, or
/// inside a function called many times) merge into one entry with
/// `executions` counting the runs and the counters summing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineProfile {
    /// How many times this pipeline ran.
    pub executions: u64,
    /// The widest degree of parallelism any execution ran at (1 =
    /// serial). Parallel executions sum worker-side operator counters,
    /// so per-operator `nanos` are CPU time while the pipeline total
    /// stays wall time.
    pub workers: u64,
    /// Per-operator counters, source first, `ReturnAt` sink last.
    pub ops: Vec<OpProfile>,
}

impl PipelineProfile {
    /// The plan signature: operator labels joined with ` -> `. Matches
    /// the plan line rendered by `explain`.
    pub fn signature(&self) -> String {
        let labels: Vec<String> = self.ops.iter().map(|op| op.label()).collect();
        labels.join(" -> ")
    }

    /// Total self time across all operators.
    pub fn total_nanos(&self) -> u64 {
        self.ops.iter().map(|op| op.nanos).sum()
    }

    fn to_json(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(|op| op.to_json()).collect();
        format!(
            "{{\"signature\":\"{}\",\"executions\":{},\"workers\":{},\"total_ns\":{},\"ops\":[{}]}}",
            self.signature(),
            self.executions,
            self.workers,
            self.total_nanos(),
            ops.join(",")
        )
    }
}

/// The profile of a whole query: every distinct pipeline that executed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Pipelines in first-execution order.
    pub pipelines: Vec<PipelineProfile>,
    /// Items cloned into newly allocated sequence backing storage over
    /// the profiled run(s) (the [`crate::EvalStats`] delta).
    pub seq_items_copied: u64,
    /// Items whose copy a shared sequence clone avoided.
    pub seq_clones_shared: u64,
    /// Path steps the profiled run(s) answered from a document store
    /// index (postings slice or value-index probe).
    pub scan_index_hits: u64,
    /// Tuples those index-resolved steps produced.
    pub scan_index_tuples: u64,
    /// Tuples produced by tree-walking descendant axis steps.
    pub scan_walk_tuples: u64,
    /// Scalar expression evaluations served by a compiled bytecode
    /// program over the profiled run(s).
    pub expr_compiled: u64,
    /// Scalar expression evaluations that fell back to the IR
    /// tree-walker because lowering declined the expression.
    pub expr_fallback: u64,
    /// Execution span timeline: one root span per recorded pipeline
    /// execution (capped at [`QueryProfile::MAX_SPANS`] to stay
    /// compact), with per-operator and per-worker child spans.
    pub spans: Vec<Span>,
}

impl QueryProfile {
    /// Retained span cap: a query that re-enters a pipeline thousands
    /// of times keeps only the first executions' timelines.
    pub const MAX_SPANS: usize = 64;

    /// Whether any pipeline was recorded.
    pub fn is_empty(&self) -> bool {
        self.pipelines.is_empty()
    }

    /// The single worst cardinality misestimate across every operator
    /// of every pipeline, or `None` when nothing carried an estimate.
    pub fn worst_misestimate(&self) -> Option<Misestimate> {
        self.pipelines
            .iter()
            .flat_map(|p| &p.ops)
            .filter_map(|op| {
                op.q_error().map(|q| Misestimate {
                    label: op.label(),
                    estimated: op.estimate.unwrap_or(0),
                    actual: op.tuples_out,
                    q_error: q,
                })
            })
            .max_by(|a, b| a.q_error.total_cmp(&b.q_error))
    }

    /// Merge another pipeline execution into the profile: same plan
    /// signature → counters sum; new signature → new entry.
    pub fn merge(&mut self, p: PipelineProfile) {
        let sig = p.signature();
        for existing in &mut self.pipelines {
            if existing.signature() == sig {
                existing.executions += p.executions;
                existing.workers = existing.workers.max(p.workers);
                for (a, b) in existing.ops.iter_mut().zip(&p.ops) {
                    a.merge(b);
                }
                return;
            }
        }
        self.pipelines.push(p);
    }

    /// The machine-readable form: one JSON object, no dependencies.
    pub fn to_json(&self) -> String {
        let pipelines: Vec<String> = self.pipelines.iter().map(|p| p.to_json()).collect();
        let spans: Vec<String> = self.spans.iter().map(|s| s.to_json()).collect();
        let worst = match self.worst_misestimate() {
            Some(m) => format!(
                "{{\"op\":\"{}\",\"est\":{},\"actual\":{},\"q_error\":{:.2}}}",
                crate::trace::json_escape(&m.label),
                m.estimated,
                m.actual,
                m.q_error
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"pipelines\":[{}],\"seq_items_copied\":{},\"seq_clones_shared\":{},\
             \"scan_index_hits\":{},\"scan_index_tuples\":{},\"scan_walk_tuples\":{},\
             \"expr_compiled\":{},\"expr_fallback\":{},\
             \"worst_misestimate\":{},\"spans\":[{}]}}",
            pipelines.join(","),
            self.seq_items_copied,
            self.seq_clones_shared,
            self.scan_index_hits,
            self.scan_index_tuples,
            self.scan_walk_tuples,
            self.expr_compiled,
            self.expr_fallback,
            worst,
            spans.join(","),
        )
    }
}

/// The per-run profile collector hung off a [`crate::DynamicContext`].
/// Interior-mutable so the pipeline can record through `&self`.
#[derive(Debug, Default)]
pub struct Profiler {
    profile: Mutex<QueryProfile>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Record one pipeline execution (merged by plan signature).
    pub fn record(&self, p: PipelineProfile) {
        self.profile.lock().expect("profiler poisoned").merge(p);
    }

    /// Record one execution's span timeline. Dropped silently past
    /// [`QueryProfile::MAX_SPANS`] retained roots.
    pub fn add_span(&self, span: Span) {
        let mut p = self.profile.lock().expect("profiler poisoned");
        if p.spans.len() < QueryProfile::MAX_SPANS {
            p.spans.push(span);
        }
    }

    /// Fold a run's sequence-copy counter deltas into the profile.
    pub fn add_seq(&self, copied: u64, shared: u64) {
        let mut p = self.profile.lock().expect("profiler poisoned");
        p.seq_items_copied += copied;
        p.seq_clones_shared += shared;
    }

    /// Fold a run's scan access-path counter deltas into the profile.
    pub fn add_access(&self, index_hits: u64, index_tuples: u64, walk_tuples: u64) {
        let mut p = self.profile.lock().expect("profiler poisoned");
        p.scan_index_hits += index_hits;
        p.scan_index_tuples += index_tuples;
        p.scan_walk_tuples += walk_tuples;
    }

    /// Fold a run's expression-evaluation counter deltas into the
    /// profile.
    pub fn add_expr(&self, compiled: u64, fallback: u64) {
        let mut p = self.profile.lock().expect("profiler poisoned");
        p.expr_compiled += compiled;
        p.expr_fallback += fallback;
    }

    /// Drain the collected profile, leaving the profiler empty.
    pub fn take(&self) -> QueryProfile {
        std::mem::take(&mut *self.profile.lock().expect("profiler poisoned"))
    }

    /// A copy of the collected profile without draining it.
    pub fn snapshot(&self) -> QueryProfile {
        self.profile.lock().expect("profiler poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, detail: &str, tuples_out: u64) -> OpProfile {
        OpProfile {
            kind,
            detail: detail.into(),
            batches: 1,
            tuples_in: 1,
            tuples_out,
            nanos: 100,
            estimate: None,
        }
    }

    #[test]
    fn tick_clock_is_deterministic() {
        let c = TickClock::new(1_000);
        assert_eq!(c.now_nanos(), 1_000);
        assert_eq!(c.now_nanos(), 2_000);
        assert_eq!(c.now_nanos(), 3_000);
    }

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn labels_match_explain_tags() {
        assert_eq!(op(OpKind::ForScan, "", 5).label(), "ForScan");
        assert_eq!(
            op(OpKind::GroupConsume, "", 2).label(),
            "GroupConsume [materializes]"
        );
        assert_eq!(op(OpKind::OrderBy, "", 2).label(), "OrderBy [materializes]");
        assert_eq!(
            op(OpKind::OrderBy, "limit=3", 2).label(),
            "OrderBy(limit=3) [heap]"
        );
    }

    #[test]
    fn only_breakers_materialize() {
        for kind in OpKind::ALL {
            assert_eq!(
                kind.materializes(),
                matches!(kind, OpKind::GroupConsume | OpKind::OrderBy),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn merge_by_signature_sums_counters() {
        let run = || PipelineProfile {
            executions: 1,
            workers: 1,
            ops: vec![op(OpKind::ForScan, "", 10), op(OpKind::ReturnAt, "", 10)],
        };
        let mut q = QueryProfile::default();
        q.merge(run());
        q.merge(run());
        q.merge(PipelineProfile {
            executions: 1,
            workers: 1,
            ops: vec![op(OpKind::LetBind, "", 1), op(OpKind::ReturnAt, "", 1)],
        });
        assert_eq!(q.pipelines.len(), 2);
        assert_eq!(q.pipelines[0].executions, 2);
        assert_eq!(q.pipelines[0].ops[0].tuples_out, 20);
        assert_eq!(q.pipelines[0].ops[0].nanos, 200);
        assert_eq!(q.pipelines[1].executions, 1);
    }

    #[test]
    fn profiler_take_drains() {
        let p = Profiler::new();
        p.record(PipelineProfile {
            executions: 1,
            workers: 1,
            ops: vec![op(OpKind::ForScan, "", 1)],
        });
        assert!(!p.snapshot().is_empty());
        assert!(!p.take().is_empty());
        assert!(p.take().is_empty());
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        let mut o = op(OpKind::ForScan, "", 10);
        assert_eq!(o.q_error(), None);
        o.estimate = Some(10);
        assert_eq!(o.q_error(), Some(1.0));
        o.estimate = Some(40); // over-estimate 4x
        assert_eq!(o.q_error(), Some(4.0));
        o.estimate = Some(2); // under-estimate 5x: same scale
        assert_eq!(o.q_error(), Some(5.0));
        o.tuples_out = 0; // empty actual clamps to 1, no div-by-zero
        assert_eq!(o.q_error(), Some(2.0));
    }

    #[test]
    fn worst_misestimate_picks_the_largest_q() {
        let mut q = QueryProfile::default();
        let mut scan = op(OpKind::ForScan, "", 100);
        scan.estimate = Some(10);
        let mut filter = op(OpKind::Filter, "", 50);
        filter.estimate = Some(40);
        q.merge(PipelineProfile {
            executions: 1,
            workers: 1,
            ops: vec![scan, filter],
        });
        let worst = q.worst_misestimate().expect("has estimates");
        assert_eq!(worst.label, "ForScan");
        assert_eq!((worst.estimated, worst.actual), (10, 100));
        assert_eq!(worst.q_error, 10.0);
        assert!(QueryProfile::default().worst_misestimate().is_none());
    }

    #[test]
    fn span_json_nests_and_names_workers() {
        let mut root = Span::leaf("pipeline #0", 1_000, 9_000);
        let mut w = Span::leaf("worker", 1_000, 5_000);
        w.worker = Some(1);
        root.children.push(w);
        let json = root.to_json();
        assert_eq!(
            json,
            "{\"name\":\"pipeline #0\",\"start_ns\":1000,\"end_ns\":9000,\
             \"children\":[{\"name\":\"worker\",\"start_ns\":1000,\"end_ns\":5000,\"worker\":1}]}"
        );
        assert_eq!(root.duration_nanos(), 8_000);
    }

    #[test]
    fn profiler_caps_retained_spans() {
        let p = Profiler::new();
        for i in 0..(QueryProfile::MAX_SPANS + 10) {
            p.add_span(Span::leaf(format!("s{i}"), 0, 1));
        }
        assert_eq!(p.snapshot().spans.len(), QueryProfile::MAX_SPANS);
    }

    #[test]
    fn json_shape() {
        let mut q = QueryProfile::default();
        q.merge(PipelineProfile {
            executions: 1,
            workers: 1,
            ops: vec![op(OpKind::OrderBy, "limit=3", 3)],
        });
        let json = q.to_json();
        assert!(json.starts_with("{\"pipelines\":["));
        assert!(json.contains("\"op\":\"OrderBy\""));
        assert!(json.contains("\"detail\":\"limit=3\""));
        assert!(json.contains("\"materializes\":true"));
        assert!(json.contains("\"time_ns\":100"));
        // No estimates recorded: per-op est keys absent, worst null.
        assert!(!json.contains("\"est\":"));
        assert!(json.contains("\"worst_misestimate\":null"));
        assert!(json.contains("\"spans\":[]"));

        let mut scan = op(OpKind::ForScan, "", 6);
        scan.estimate = Some(3);
        q.merge(PipelineProfile {
            executions: 1,
            workers: 1,
            ops: vec![scan],
        });
        q.spans.push(Span::leaf("pipeline #0", 0, 100));
        let json = q.to_json();
        assert!(json.contains("\"est\":3,\"q_error\":2.00"), "{json}");
        assert!(
            json.contains("\"worst_misestimate\":{\"op\":\"ForScan\",\"est\":3,\"actual\":6,\"q_error\":2.00}"),
            "{json}"
        );
        assert!(
            json.contains("\"spans\":[{\"name\":\"pipeline #0\""),
            "{json}"
        );
    }
}
