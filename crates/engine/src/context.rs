//! Static and dynamic evaluation contexts.

use crate::profile::{Clock, MonotonicClock, Profiler, QueryProfile};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xqa_storage::DocumentStore;
use xqa_xdm::{DateTime, Document, Item, NodeHandle};

/// The focus: context item, position and size, as set by path steps and
/// predicates (`.`, `fn:position()`, `fn:last()`).
#[derive(Debug, Clone)]
pub struct Focus {
    /// The context item.
    pub item: Item,
    /// 1-based position of the item in the context sequence.
    pub position: i64,
    /// Size of the context sequence.
    pub size: i64,
}

/// Evaluation statistics, useful for demonstrating the plan-shape
/// difference the paper measures (scans vs. single-pass grouping).
///
/// Counters are relaxed [`AtomicU64`]s so a context can be shared
/// (`Arc<DynamicContext>`) across service worker threads and the stats
/// aggregate without locks; single-threaded overhead is an uncontended
/// atomic add per bump.
#[derive(Debug, Default)]
pub struct EvalStats {
    /// Nodes touched by axis traversal.
    pub nodes_visited: AtomicU64,
    /// Input tuples consumed by `group by` clauses.
    pub tuples_grouped: AtomicU64,
    /// Groups emitted by `group by` clauses.
    pub groups_emitted: AtomicU64,
    /// Item comparisons performed (general/value comparisons).
    pub comparisons: AtomicU64,
    /// Tuples produced by pipeline scan operators (`for` / window).
    pub tuples_produced: AtomicU64,
    /// Tuples dropped by `where` filters.
    pub tuples_pruned_filter: AtomicU64,
    /// Tuples rejected or evicted by the bounded top-k heap.
    pub tuples_pruned_topk: AtomicU64,
    /// Items cloned into newly allocated sequence backing storage.
    pub seq_items_copied: AtomicU64,
    /// Items whose copy was avoided because a sequence clone shared its
    /// backing allocation (each would have been a copy under `Vec`).
    pub seq_clones_shared: AtomicU64,
    /// Leading descendant steps served by a document-store index lookup.
    pub scan_index_hits: AtomicU64,
    /// Tuples produced by index-resolved scans.
    pub scan_index_tuples: AtomicU64,
    /// Tuples produced by tree-walk descendant scans.
    pub scan_walk_tuples: AtomicU64,
    /// Scalar expression evaluations served by a compiled bytecode
    /// program.
    pub expr_compiled: AtomicU64,
    /// Scalar expression evaluations that fell back to the IR
    /// tree-walker because lowering declined the expression.
    pub expr_fallback: AtomicU64,
    /// Probe lookups served by `HashJoin` operators (one per tuple
    /// probed against a build table).
    pub join_hash_probes: AtomicU64,
    /// Items materialized into `HashJoin` build tables.
    pub join_build_tuples: AtomicU64,
}

/// A plain-value copy of [`EvalStats`] taken at one instant.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStatsSnapshot {
    /// Nodes touched by axis traversal.
    pub nodes_visited: u64,
    /// Input tuples consumed by `group by` clauses.
    pub tuples_grouped: u64,
    /// Groups emitted by `group by` clauses.
    pub groups_emitted: u64,
    /// Item comparisons performed.
    pub comparisons: u64,
    /// Tuples produced by pipeline scan operators.
    pub tuples_produced: u64,
    /// Tuples dropped by `where` filters.
    pub tuples_pruned_filter: u64,
    /// Tuples rejected or evicted by the bounded top-k heap.
    pub tuples_pruned_topk: u64,
    /// Items cloned into newly allocated sequence backing storage.
    pub seq_items_copied: u64,
    /// Items whose copy a shared sequence clone avoided.
    pub seq_clones_shared: u64,
    /// Leading descendant steps served by a document-store index lookup.
    pub scan_index_hits: u64,
    /// Tuples produced by index-resolved scans.
    pub scan_index_tuples: u64,
    /// Tuples produced by tree-walk descendant scans.
    pub scan_walk_tuples: u64,
    /// Scalar expression evaluations served by compiled bytecode.
    pub expr_compiled: u64,
    /// Scalar expression evaluations that fell back to the tree-walker.
    pub expr_fallback: u64,
    /// Probe lookups served by `HashJoin` operators.
    pub join_hash_probes: u64,
    /// Items materialized into `HashJoin` build tables.
    pub join_build_tuples: u64,
}

impl EvalStats {
    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.nodes_visited.store(0, Ordering::Relaxed);
        self.tuples_grouped.store(0, Ordering::Relaxed);
        self.groups_emitted.store(0, Ordering::Relaxed);
        self.comparisons.store(0, Ordering::Relaxed);
        self.tuples_produced.store(0, Ordering::Relaxed);
        self.tuples_pruned_filter.store(0, Ordering::Relaxed);
        self.tuples_pruned_topk.store(0, Ordering::Relaxed);
        self.seq_items_copied.store(0, Ordering::Relaxed);
        self.seq_clones_shared.store(0, Ordering::Relaxed);
        self.scan_index_hits.store(0, Ordering::Relaxed);
        self.scan_index_tuples.store(0, Ordering::Relaxed);
        self.scan_walk_tuples.store(0, Ordering::Relaxed);
        self.expr_compiled.store(0, Ordering::Relaxed);
        self.expr_fallback.store(0, Ordering::Relaxed);
        self.join_hash_probes.store(0, Ordering::Relaxed);
        self.join_build_tuples.store(0, Ordering::Relaxed);
    }

    /// Add `n` to the nodes-visited counter.
    pub fn add_nodes_visited(&self, n: u64) {
        self.nodes_visited.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the tuples-grouped counter.
    pub fn add_tuples_grouped(&self, n: u64) {
        self.tuples_grouped.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the groups-emitted counter.
    pub fn add_groups_emitted(&self, n: u64) {
        self.groups_emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the comparisons counter.
    pub fn add_comparisons(&self, n: u64) {
        self.comparisons.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the tuples-produced counter.
    pub fn add_tuples_produced(&self, n: u64) {
        self.tuples_produced.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the filter-pruned counter.
    pub fn add_tuples_pruned_filter(&self, n: u64) {
        self.tuples_pruned_filter.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the top-k-pruned counter.
    pub fn add_tuples_pruned_topk(&self, n: u64) {
        self.tuples_pruned_topk.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold a drained pair of thread-local sequence-copy counters
    /// ([`xqa_xdm::take_seq_counters`]) into this block.
    pub fn add_seq_counters(&self, copied: u64, shared: u64) {
        self.seq_items_copied.fetch_add(copied, Ordering::Relaxed);
        self.seq_clones_shared.fetch_add(shared, Ordering::Relaxed);
    }

    /// Record one index-served scan producing `tuples` tuples.
    pub fn add_scan_index(&self, tuples: u64) {
        self.scan_index_hits.fetch_add(1, Ordering::Relaxed);
        self.scan_index_tuples.fetch_add(tuples, Ordering::Relaxed);
    }

    /// Add `n` to the walk-scan tuple counter.
    pub fn add_scan_walk_tuples(&self, n: u64) {
        self.scan_walk_tuples.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the compiled-expression evaluation counter.
    pub fn add_expr_compiled(&self, n: u64) {
        self.expr_compiled.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the tree-walker fallback evaluation counter.
    pub fn add_expr_fallback(&self, n: u64) {
        self.expr_fallback.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the hash-join probe counter.
    pub fn add_join_hash_probes(&self, n: u64) {
        self.join_hash_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` to the hash-join build-tuple counter.
    pub fn add_join_build_tuples(&self, n: u64) {
        self.join_build_tuples.fetch_add(n, Ordering::Relaxed);
    }

    /// Add a snapshot's counters into this block (used by the service
    /// to aggregate per-request snapshots into server-wide totals).
    pub fn add_snapshot(&self, s: &EvalStatsSnapshot) {
        self.nodes_visited
            .fetch_add(s.nodes_visited, Ordering::Relaxed);
        self.tuples_grouped
            .fetch_add(s.tuples_grouped, Ordering::Relaxed);
        self.groups_emitted
            .fetch_add(s.groups_emitted, Ordering::Relaxed);
        self.comparisons.fetch_add(s.comparisons, Ordering::Relaxed);
        self.tuples_produced
            .fetch_add(s.tuples_produced, Ordering::Relaxed);
        self.tuples_pruned_filter
            .fetch_add(s.tuples_pruned_filter, Ordering::Relaxed);
        self.tuples_pruned_topk
            .fetch_add(s.tuples_pruned_topk, Ordering::Relaxed);
        self.seq_items_copied
            .fetch_add(s.seq_items_copied, Ordering::Relaxed);
        self.seq_clones_shared
            .fetch_add(s.seq_clones_shared, Ordering::Relaxed);
        self.scan_index_hits
            .fetch_add(s.scan_index_hits, Ordering::Relaxed);
        self.scan_index_tuples
            .fetch_add(s.scan_index_tuples, Ordering::Relaxed);
        self.scan_walk_tuples
            .fetch_add(s.scan_walk_tuples, Ordering::Relaxed);
        self.expr_compiled
            .fetch_add(s.expr_compiled, Ordering::Relaxed);
        self.expr_fallback
            .fetch_add(s.expr_fallback, Ordering::Relaxed);
        self.join_hash_probes
            .fetch_add(s.join_hash_probes, Ordering::Relaxed);
        self.join_build_tuples
            .fetch_add(s.join_build_tuples, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> EvalStatsSnapshot {
        EvalStatsSnapshot {
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
            tuples_grouped: self.tuples_grouped.load(Ordering::Relaxed),
            groups_emitted: self.groups_emitted.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            tuples_produced: self.tuples_produced.load(Ordering::Relaxed),
            tuples_pruned_filter: self.tuples_pruned_filter.load(Ordering::Relaxed),
            tuples_pruned_topk: self.tuples_pruned_topk.load(Ordering::Relaxed),
            seq_items_copied: self.seq_items_copied.load(Ordering::Relaxed),
            seq_clones_shared: self.seq_clones_shared.load(Ordering::Relaxed),
            scan_index_hits: self.scan_index_hits.load(Ordering::Relaxed),
            scan_index_tuples: self.scan_index_tuples.load(Ordering::Relaxed),
            scan_walk_tuples: self.scan_walk_tuples.load(Ordering::Relaxed),
            expr_compiled: self.expr_compiled.load(Ordering::Relaxed),
            expr_fallback: self.expr_fallback.load(Ordering::Relaxed),
            join_hash_probes: self.join_hash_probes.load(Ordering::Relaxed),
            join_build_tuples: self.join_build_tuples.load(Ordering::Relaxed),
        }
    }
}

impl EvalStatsSnapshot {
    /// Render the snapshot as one JSON object (std-only, hand-rolled).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"nodes_visited\":{},\"tuples_grouped\":{},\"groups_emitted\":{},\
             \"comparisons\":{},\"tuples_produced\":{},\"tuples_pruned_filter\":{},\
             \"tuples_pruned_topk\":{},\"seq_items_copied\":{},\"seq_clones_shared\":{},\
             \"scan_index_hits\":{},\"scan_index_tuples\":{},\"scan_walk_tuples\":{},\
             \"expr_compiled\":{},\"expr_fallback\":{},\
             \"join_hash_probes\":{},\"join_build_tuples\":{}}}",
            self.nodes_visited,
            self.tuples_grouped,
            self.groups_emitted,
            self.comparisons,
            self.tuples_produced,
            self.tuples_pruned_filter,
            self.tuples_pruned_topk,
            self.seq_items_copied,
            self.seq_clones_shared,
            self.scan_index_hits,
            self.scan_index_tuples,
            self.scan_walk_tuples,
            self.expr_compiled,
            self.expr_fallback,
            self.join_hash_probes,
            self.join_build_tuples
        )
    }
}

/// The dynamic context: input documents and runtime counters.
#[derive(Debug)]
pub struct DynamicContext {
    context_item: Option<Item>,
    documents: HashMap<String, NodeHandle>,
    default_collection: Option<Vec<NodeHandle>>,
    collections: HashMap<String, Vec<NodeHandle>>,
    /// Indexed document stores, keyed by document serial. The evaluator
    /// resolves index-annotated path steps against these; documents
    /// without a store fall back to the tree walk per item.
    stores: HashMap<u64, Arc<DocumentStore>>,
    current_datetime: DateTime,
    /// Runtime counters (always collected; the overhead is a few
    /// relaxed `Cell` bumps).
    pub stats: EvalStats,
    /// The monotonic clock used for profiling timestamps. Injectable
    /// ([`DynamicContext::set_clock`]) so profiled runs can be made
    /// deterministic with a [`crate::profile::TickClock`] in tests.
    clock: Arc<dyn Clock>,
    /// Per-operator profile collector; `None` unless profiling was
    /// enabled, so unprofiled runs pay nothing in the pipeline.
    profiler: Option<Arc<Profiler>>,
}

impl Default for DynamicContext {
    fn default() -> Self {
        DynamicContext {
            context_item: None,
            documents: HashMap::new(),
            default_collection: None,
            collections: HashMap::new(),
            stores: HashMap::new(),
            // A fixed instant so queries are deterministic by default
            // (June 14, 2005 — the paper's SIGMOD). Override with
            // `set_current_datetime` for wall-clock behaviour.
            current_datetime: DateTime {
                year: 2005,
                month: 6,
                day: 14,
                hour: 9,
                minute: 0,
                second: 0,
                nanos: 0,
                tz_offset_min: Some(0),
            },
            stats: EvalStats::default(),
            clock: Arc::new(MonotonicClock::new()),
            profiler: None,
        }
    }
}

impl DynamicContext {
    /// An empty context (no input document).
    pub fn new() -> DynamicContext {
        DynamicContext::default()
    }

    /// The instant reported by `fn:current-dateTime()` /
    /// `fn:current-date()` (fixed per context, per the XQuery rule that
    /// the current dateTime is stable throughout a query).
    pub fn current_datetime(&self) -> DateTime {
        self.current_datetime
    }

    /// Override the context's current dateTime.
    pub fn set_current_datetime(&mut self, dt: DateTime) -> &mut Self {
        self.current_datetime = dt;
        self
    }

    /// Set the initial context item to the given document's root,
    /// making `/`, `//x` and `fn:root()` work.
    pub fn set_context_document(&mut self, doc: &Arc<Document>) -> &mut Self {
        self.context_item = Some(Item::Node(doc.root()));
        self
    }

    /// Set an arbitrary initial context item.
    pub fn set_context_item(&mut self, item: Item) -> &mut Self {
        self.context_item = Some(item);
        self
    }

    /// The initial context item, if any.
    pub fn context_item(&self) -> Option<&Item> {
        self.context_item.as_ref()
    }

    /// Register a document for `fn:doc("uri")`.
    pub fn register_document(&mut self, uri: impl Into<String>, doc: &Arc<Document>) -> &mut Self {
        self.documents.insert(uri.into(), doc.root());
        self
    }

    /// Look up a document by URI.
    pub fn document(&self, uri: &str) -> Option<&NodeHandle> {
        self.documents.get(uri)
    }

    /// Set the default collection (`fn:collection()` with no argument).
    pub fn set_default_collection(&mut self, roots: Vec<NodeHandle>) -> &mut Self {
        self.default_collection = Some(roots);
        self
    }

    /// Register a named collection for `fn:collection("name")`.
    pub fn register_collection(
        &mut self,
        name: impl Into<String>,
        roots: Vec<NodeHandle>,
    ) -> &mut Self {
        self.collections.insert(name.into(), roots);
        self
    }

    /// Look up a collection: `None` name means the default collection.
    pub fn collection(&self, name: Option<&str>) -> Option<&[NodeHandle]> {
        match name {
            None => self.default_collection.as_deref(),
            Some(n) => self.collections.get(n).map(|v| v.as_slice()),
        }
    }

    /// Register an indexed store for its document (keyed by document
    /// serial). Re-registering for the same document replaces the store.
    pub fn register_store(&mut self, store: Arc<DocumentStore>) -> &mut Self {
        self.stores.insert(store.document().serial(), store);
        self
    }

    /// The store indexing the document with the given serial, if any.
    pub fn store(&self, doc_serial: u64) -> Option<&Arc<DocumentStore>> {
        self.stores.get(&doc_serial)
    }

    /// The registered stores, in arbitrary order.
    pub fn stores(&self) -> impl Iterator<Item = &Arc<DocumentStore>> {
        self.stores.values()
    }

    /// Build and register a [`DocumentStore`] for every document
    /// reachable from this context (context item, `fn:doc` registry,
    /// default and named collections) that does not have one yet.
    /// Returns how many stores were built.
    pub fn index_documents(&mut self) -> usize {
        let mut docs: Vec<Arc<Document>> = Vec::new();
        let mut seen: std::collections::HashSet<u64> = self.stores.keys().copied().collect();
        let push = |doc: &Arc<Document>,
                    docs: &mut Vec<Arc<Document>>,
                    seen: &mut std::collections::HashSet<u64>| {
            if seen.insert(doc.serial()) {
                docs.push(Arc::clone(doc));
            }
        };
        if let Some(Item::Node(n)) = &self.context_item {
            push(n.document(), &mut docs, &mut seen);
        }
        for n in self.documents.values() {
            push(n.document(), &mut docs, &mut seen);
        }
        for n in self.default_collection.iter().flatten() {
            push(n.document(), &mut docs, &mut seen);
        }
        for n in self.collections.values().flatten() {
            push(n.document(), &mut docs, &mut seen);
        }
        let built = docs.len();
        for doc in docs {
            self.register_store(Arc::new(DocumentStore::build(&doc)));
        }
        built
    }

    /// The clock profiling timestamps are read from.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Replace the profiling clock (inject a deterministic
    /// [`crate::profile::TickClock`] for golden tests).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) -> &mut Self {
        self.clock = clock;
        self
    }

    /// Turn on per-operator profiling for subsequent runs against this
    /// context, installing a fresh collector.
    pub fn enable_profiling(&mut self) -> &mut Self {
        self.profiler = Some(Arc::new(Profiler::new()));
        self
    }

    /// The installed profile collector, if profiling is enabled.
    pub fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// Drain the collected per-operator profile. `None` when profiling
    /// was never enabled.
    pub fn take_profile(&self) -> Option<QueryProfile> {
        self.profiler.as_ref().map(|p| p.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xdm::{DocumentBuilder, QName};

    fn doc() -> Arc<Document> {
        let mut b = DocumentBuilder::new();
        b.start_element(QName::local("r")).end_element();
        b.finish()
    }

    #[test]
    fn context_document_sets_root_item() {
        let d = doc();
        let mut ctx = DynamicContext::new();
        ctx.set_context_document(&d);
        match ctx.context_item().unwrap() {
            Item::Node(n) => assert!(n.is_same_node(&d.root())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn documents_and_collections() {
        let d1 = doc();
        let d2 = doc();
        let mut ctx = DynamicContext::new();
        ctx.register_document("a.xml", &d1);
        ctx.register_collection("orders", vec![d1.root(), d2.root()]);
        ctx.set_default_collection(vec![d2.root()]);
        assert!(ctx.document("a.xml").is_some());
        assert!(ctx.document("missing.xml").is_none());
        assert_eq!(ctx.collection(Some("orders")).unwrap().len(), 2);
        assert_eq!(ctx.collection(None).unwrap().len(), 1);
        assert!(ctx.collection(Some("nope")).is_none());
    }

    #[test]
    fn stats_reset() {
        let ctx = DynamicContext::new();
        ctx.stats.add_nodes_visited(5);
        ctx.stats.add_comparisons(2);
        assert_eq!(ctx.stats.snapshot().nodes_visited, 5);
        ctx.stats.reset();
        assert_eq!(ctx.stats.snapshot(), EvalStatsSnapshot::default());
    }

    #[test]
    fn add_snapshot_accumulates() {
        let totals = EvalStats::default();
        let s = EvalStatsSnapshot {
            nodes_visited: 3,
            tuples_produced: 10,
            ..Default::default()
        };
        totals.add_snapshot(&s);
        totals.add_snapshot(&s);
        let t = totals.snapshot();
        assert_eq!(t.nodes_visited, 6);
        assert_eq!(t.tuples_produced, 20);
        assert_eq!(t.comparisons, 0);
    }

    #[test]
    fn snapshot_json_shape() {
        let json = EvalStatsSnapshot::default().to_json();
        assert!(json.starts_with("{\"nodes_visited\":0"));
        assert!(json.ends_with("\"join_build_tuples\":0}"));
    }

    #[test]
    fn profiling_disabled_by_default() {
        let mut ctx = DynamicContext::new();
        assert!(ctx.profiler().is_none());
        assert!(ctx.take_profile().is_none());
        ctx.enable_profiling();
        assert!(ctx.profiler().is_some());
        assert!(ctx.take_profile().expect("enabled").is_empty());
    }

    #[test]
    fn stats_aggregate_across_threads() {
        let ctx = std::sync::Arc::new(DynamicContext::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = std::sync::Arc::clone(&ctx);
                s.spawn(move || {
                    for _ in 0..1000 {
                        ctx.stats.add_comparisons(1);
                    }
                });
            }
        });
        assert_eq!(ctx.stats.snapshot().comparisons, 4000);
    }
}
