//! FLWOR evaluation: the tuple-stream pipeline.
//!
//! Exactly the model of the paper's §3.1: the `for`/`let` clauses
//! generate an ordered stream of tuples of bound variables; `where`
//! filters it; **`group by` consumes the stream and emits one tuple per
//! group** (grouping variables bound to representative values, nesting
//! variables to the concatenated nest-expression values in input order,
//! or in `nest ... order by` order); post-group `let`/`where` compute
//! and filter group properties; `order by` sorts; `return` — optionally
//! with an output positional variable (§4) — produces the result.

use crate::error::{EngineError, EngineResult};
use crate::eval::{opt_atomic, untyped_to_string, Env, Interpreter};
use crate::ir::*;
use std::cmp::Ordering;
use xqa_xdm::{effective_boolean_value, sort_compare, AtomicValue, ErrorCode, Item, Sequence};

/// One tuple of the stream: a snapshot of the frame slots. `Sequence`
/// clones are O(1), so snapshots bind values directly.
pub(crate) type Tuple = Vec<Sequence>;

/// Order-by key values for one tuple (one entry per spec).
pub(crate) type OrderKeys = Vec<Option<AtomicValue>>;

impl Interpreter<'_> {
    pub(crate) fn eval_flwor(&self, f: &FlworIr, env: &mut Env) -> EngineResult<Sequence> {
        // The pipeline writes slots in place: every binding in the query
        // has a globally unique slot (the compiler's frame only shrinks
        // *visibility*, never reuses numbers), so there is nothing to
        // save or restore.
        crate::pipeline::run(self, f, env)
    }

    /// XQuery 3.0 windows: emit one tuple per window over the binding
    /// sequence, binding the window variable and the start/end
    /// condition variables. (Also used per input tuple by the streaming
    /// [`crate::pipeline::WindowScan`] operator.)
    pub(crate) fn apply_window(
        &self,
        w: &WindowIr,
        tuples: Vec<Tuple>,
        env: &mut Env,
    ) -> EngineResult<Vec<Tuple>> {
        let mut out = Vec::new();
        for tuple in tuples {
            env.slots = tuple;
            let items = self.eval(&w.expr, env)?;
            let tuple = std::mem::take(&mut env.slots);
            let n = items.len();

            // Bind a condition's variables for boundary index `i` on the
            // scratch tuple, then evaluate `when` as a boolean.
            let eval_cond = |cond: &WindowCondIr,
                             base: &Tuple,
                             i: usize,
                             env: &mut Env|
             -> EngineResult<(bool, Tuple)> {
                let mut t = base.clone();
                bind_window_vars(&mut t, cond, &items, i);
                env.slots = t;
                let v = self.eval(&cond.when, env)?;
                let keep = effective_boolean_value(&v).map_err(EngineError::from)?;
                Ok((keep, std::mem::take(&mut env.slots)))
            };

            // Collect (start, end) index pairs.
            let mut windows: Vec<(usize, usize, Tuple)> = Vec::new();
            if w.sliding {
                for i in 0..n {
                    let (starts, with_start) = eval_cond(&w.start, &tuple, i, env)?;
                    if !starts {
                        continue;
                    }
                    let end_cond = w.end.as_ref().expect("parser enforces sliding end");
                    let mut closed = None;
                    for j in i..n {
                        let (ends, with_both) = eval_cond(end_cond, &with_start, j, env)?;
                        if ends {
                            closed = Some((j, with_both));
                            break;
                        }
                    }
                    match closed {
                        Some((j, t)) => windows.push((i, j, t)),
                        None if !w.only_end => {
                            // Close at the end of the sequence; end vars
                            // describe the final item.
                            let mut t = with_start;
                            bind_window_vars_opt(&mut t, w.end.as_ref(), &items, n - 1);
                            windows.push((i, n - 1, t));
                        }
                        None => {}
                    }
                }
            } else {
                let mut i = 0;
                while i < n {
                    let (starts, with_start) = eval_cond(&w.start, &tuple, i, env)?;
                    if !starts {
                        i += 1;
                        continue;
                    }
                    match &w.end {
                        Some(end_cond) => {
                            let mut closed = None;
                            for j in i..n {
                                let (ends, with_both) = eval_cond(end_cond, &with_start, j, env)?;
                                if ends {
                                    closed = Some((j, with_both));
                                    break;
                                }
                            }
                            match closed {
                                Some((j, t)) => {
                                    windows.push((i, j, t));
                                    i = j + 1;
                                }
                                None => {
                                    if !w.only_end {
                                        let mut t = with_start;
                                        bind_window_vars_opt(&mut t, w.end.as_ref(), &items, n - 1);
                                        windows.push((i, n - 1, t));
                                    }
                                    i = n;
                                }
                            }
                        }
                        None => {
                            // Tumbling without end: the window runs to
                            // just before the next start match.
                            let mut j = i + 1;
                            let mut next_start = n;
                            while j < n {
                                let (starts, _) = eval_cond(&w.start, &tuple, j, env)?;
                                if starts {
                                    next_start = j;
                                    break;
                                }
                                j += 1;
                            }
                            windows.push((i, next_start - 1, with_start));
                            i = next_start;
                        }
                    }
                }
            }

            for (s_idx, e_idx, mut t) in windows {
                t[w.slot] = Sequence::from_slice(&items[s_idx..=e_idx]);
                out.push(t);
            }
        }
        Ok(out)
    }

    /// Evaluate the order-by key values for the current tuple.
    pub(crate) fn order_keys(
        &self,
        specs: &[OrderSpecIr],
        env: &mut Env,
    ) -> EngineResult<OrderKeys> {
        let mut keys = Vec::with_capacity(specs.len());
        for spec in specs {
            let v = self.eval(&spec.expr, env)?;
            let key = opt_atomic(&v, "order by key")?;
            // Untyped order keys compare as strings (XQuery 1.0 rule).
            keys.push(key.map(untyped_to_string));
        }
        Ok(keys)
    }
}

/// Stable-sort `(keys, payload)` pairs by the order specs. Errors from
/// incomparable keys are surfaced after the sort.
pub(crate) fn sort_keyed<T>(
    items: &mut [(OrderKeys, T)],
    specs: &[OrderSpecIr],
) -> EngineResult<()> {
    let mut failure: Option<EngineError> = None;
    items.sort_by(|(a, _), (b, _)| {
        if failure.is_some() {
            return Ordering::Equal;
        }
        match compare_order_keys(a, b, specs) {
            Ok(ord) => ord,
            Err(e) => {
                failure = Some(e);
                Ordering::Equal
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Compare two key tuples under the specs (major key first). The empty
/// sequence sorts least by default, greatest under `empty greatest`;
/// `descending` reverses the whole comparison for that key.
pub(crate) fn compare_order_keys(
    a: &OrderKeys,
    b: &OrderKeys,
    specs: &[OrderSpecIr],
) -> EngineResult<Ordering> {
    debug_assert_eq!(a.len(), specs.len());
    for ((ka, kb), spec) in a.iter().zip(b).zip(specs) {
        let ord = match (ka, kb) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => {
                if spec.empty_greatest {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Some(_), None) => {
                if spec.empty_greatest {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Some(x), Some(y)) => sort_compare(x, y).map_err(|_| {
                EngineError::dynamic(
                    ErrorCode::XPTY0004,
                    format!(
                        "order by keys are not comparable ({} vs {})",
                        x.atomic_type(),
                        y.atomic_type()
                    ),
                )
            })?,
        };
        let ord = if spec.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return Ok(ord);
        }
    }
    Ok(Ordering::Equal)
}

/// Bind a window condition's variables on the tuple for boundary `i`.
fn bind_window_vars(t: &mut Tuple, cond: &WindowCondIr, items: &[Item], i: usize) {
    if let Some(slot) = cond.item_slot {
        t[slot] = Sequence::One(items[i].clone());
    }
    if let Some(slot) = cond.at_slot {
        t[slot] = Sequence::one(i as i64 + 1);
    }
    if let Some(slot) = cond.previous_slot {
        t[slot] = if i > 0 {
            Sequence::One(items[i - 1].clone())
        } else {
            Sequence::Empty
        };
    }
    if let Some(slot) = cond.next_slot {
        t[slot] = items
            .get(i + 1)
            .map(|x| Sequence::One(x.clone()))
            .unwrap_or(Sequence::Empty);
    }
}

fn bind_window_vars_opt(t: &mut Tuple, cond: Option<&WindowCondIr>, items: &[Item], i: usize) {
    if let Some(cond) = cond {
        bind_window_vars(t, cond, items, i);
    }
}
