//! FLWOR evaluation: the tuple-stream pipeline.
//!
//! Exactly the model of the paper's §3.1: the `for`/`let` clauses
//! generate an ordered stream of tuples of bound variables; `where`
//! filters it; **`group by` consumes the stream and emits one tuple per
//! group** (grouping variables bound to representative values, nesting
//! variables to the concatenated nest-expression values in input order,
//! or in `nest ... order by` order); post-group `let`/`where` compute
//! and filter group properties; `order by` sorts; `return` — optionally
//! with an output positional variable (§4) — produces the result.

use crate::error::{EngineError, EngineResult};
use crate::eval::{opt_atomic, untyped_to_string, Env, Interpreter};
use crate::ir::*;
use crate::keys::GroupIndex;
use crate::types::matches_seq_type;
use std::cmp::Ordering;
use std::sync::Arc;
use xqa_xdm::{
    deep_equal, effective_boolean_value, sort_compare, AtomicValue, ErrorCode, Item, Sequence,
};

/// One tuple of the stream: a snapshot of the frame slots.
pub(crate) type Tuple = Vec<Arc<Sequence>>;

/// Order-by key values for one tuple (one entry per spec).
pub(crate) type OrderKeys = Vec<Option<AtomicValue>>;

impl Interpreter<'_> {
    pub(crate) fn eval_flwor(&self, f: &FlworIr, env: &mut Env) -> EngineResult<Sequence> {
        if self.query.streaming {
            // The streaming path writes slots in place: every binding in
            // the query has a globally unique slot (the compiler's frame
            // only shrinks *visibility*, never reuses numbers), so there
            // is nothing to save or restore.
            return crate::pipeline::run(self, f, env);
        }
        // Legacy materializing path. Scope guard: move the frame out
        // (no clone), seed the pipeline with one snapshot, and move it
        // back on exit — one allocation instead of the former two.
        let saved = std::mem::take(&mut env.slots);
        let result = self.eval_flwor_inner(f, saved.clone(), env);
        env.slots = saved;
        result
    }

    fn eval_flwor_inner(&self, f: &FlworIr, seed: Tuple, env: &mut Env) -> EngineResult<Sequence> {
        let mut tuples: Vec<Tuple> = vec![seed];
        for clause in &f.clauses {
            tuples = self.apply_clause(clause, tuples, env)?;
        }
        let mut out: Sequence = Vec::new();
        for (i, tuple) in tuples.into_iter().enumerate() {
            env.slots = tuple;
            if let Some(at) = f.return_at {
                // §4: the output ordinal, after any order by.
                env.slots[at] = Arc::new(vec![Item::from(i as i64 + 1)]);
            }
            out.extend(self.eval(&f.return_expr, env)?);
        }
        Ok(out)
    }

    fn apply_clause(
        &self,
        clause: &ClauseIr,
        tuples: Vec<Tuple>,
        env: &mut Env,
    ) -> EngineResult<Vec<Tuple>> {
        match clause {
            ClauseIr::For {
                slot,
                at_slot,
                ty,
                expr,
            } => {
                let mut out = Vec::new();
                for tuple in tuples {
                    env.slots = tuple;
                    let seq = self.eval(expr, env)?;
                    let tuple = std::mem::take(&mut env.slots);
                    for (i, item) in seq.into_iter().enumerate() {
                        if let Some(ty) = ty {
                            let single = [item.clone()];
                            if !matches_seq_type(&single, ty) {
                                return Err(EngineError::dynamic(
                                    ErrorCode::XPTY0004,
                                    "for-binding value does not match its declared type",
                                ));
                            }
                        }
                        let mut t = tuple.clone();
                        t[*slot] = Arc::new(vec![item]);
                        if let Some(at) = at_slot {
                            t[*at] = Arc::new(vec![Item::from(i as i64 + 1)]);
                        }
                        out.push(t);
                    }
                }
                Ok(out)
            }
            ClauseIr::Let { slot, ty, expr } => {
                let mut out = Vec::with_capacity(tuples.len());
                for tuple in tuples {
                    env.slots = tuple;
                    let seq = self.eval(expr, env)?;
                    if let Some(ty) = ty {
                        if !matches_seq_type(&seq, ty) {
                            return Err(EngineError::dynamic(
                                ErrorCode::XPTY0004,
                                "let-binding value does not match its declared type",
                            ));
                        }
                    }
                    let mut t = std::mem::take(&mut env.slots);
                    t[*slot] = Arc::new(seq);
                    out.push(t);
                }
                Ok(out)
            }
            ClauseIr::Where(cond) => {
                let mut out = Vec::with_capacity(tuples.len());
                for tuple in tuples {
                    env.slots = tuple;
                    let keep = {
                        let v = self.eval(cond, env)?;
                        effective_boolean_value(&v).map_err(EngineError::from)?
                    };
                    let t = std::mem::take(&mut env.slots);
                    if keep {
                        out.push(t);
                    }
                }
                Ok(out)
            }
            ClauseIr::Count { slot } => {
                let mut out = Vec::with_capacity(tuples.len());
                for (i, mut tuple) in tuples.into_iter().enumerate() {
                    tuple[*slot] = Arc::new(vec![Item::from(i as i64 + 1)]);
                    out.push(tuple);
                }
                Ok(out)
            }
            ClauseIr::Window(w) => self.apply_window(w, tuples, env),
            ClauseIr::GroupBy(g) => self.apply_group_by(g, tuples, env),
            ClauseIr::OrderBy(ob) => self.apply_order_by(ob, tuples, env),
        }
    }

    /// XQuery 3.0 windows: emit one tuple per window over the binding
    /// sequence, binding the window variable and the start/end
    /// condition variables. (Also used per input tuple by the streaming
    /// [`crate::pipeline::WindowScan`] operator.)
    pub(crate) fn apply_window(
        &self,
        w: &WindowIr,
        tuples: Vec<Tuple>,
        env: &mut Env,
    ) -> EngineResult<Vec<Tuple>> {
        let mut out = Vec::new();
        for tuple in tuples {
            env.slots = tuple;
            let items = self.eval(&w.expr, env)?;
            let tuple = std::mem::take(&mut env.slots);
            let n = items.len();

            // Bind a condition's variables for boundary index `i` on the
            // scratch tuple, then evaluate `when` as a boolean.
            let eval_cond = |cond: &WindowCondIr,
                             base: &Tuple,
                             i: usize,
                             env: &mut Env|
             -> EngineResult<(bool, Tuple)> {
                let mut t = base.clone();
                bind_window_vars(&mut t, cond, &items, i);
                env.slots = t;
                let v = self.eval(&cond.when, env)?;
                let keep = effective_boolean_value(&v).map_err(EngineError::from)?;
                Ok((keep, std::mem::take(&mut env.slots)))
            };

            // Collect (start, end) index pairs.
            let mut windows: Vec<(usize, usize, Tuple)> = Vec::new();
            if w.sliding {
                for i in 0..n {
                    let (starts, with_start) = eval_cond(&w.start, &tuple, i, env)?;
                    if !starts {
                        continue;
                    }
                    let end_cond = w.end.as_ref().expect("parser enforces sliding end");
                    let mut closed = None;
                    for j in i..n {
                        let (ends, with_both) = eval_cond(end_cond, &with_start, j, env)?;
                        if ends {
                            closed = Some((j, with_both));
                            break;
                        }
                    }
                    match closed {
                        Some((j, t)) => windows.push((i, j, t)),
                        None if !w.only_end => {
                            // Close at the end of the sequence; end vars
                            // describe the final item.
                            let mut t = with_start;
                            bind_window_vars_opt(&mut t, w.end.as_ref(), &items, n - 1);
                            windows.push((i, n - 1, t));
                        }
                        None => {}
                    }
                }
            } else {
                let mut i = 0;
                while i < n {
                    let (starts, with_start) = eval_cond(&w.start, &tuple, i, env)?;
                    if !starts {
                        i += 1;
                        continue;
                    }
                    match &w.end {
                        Some(end_cond) => {
                            let mut closed = None;
                            for j in i..n {
                                let (ends, with_both) = eval_cond(end_cond, &with_start, j, env)?;
                                if ends {
                                    closed = Some((j, with_both));
                                    break;
                                }
                            }
                            match closed {
                                Some((j, t)) => {
                                    windows.push((i, j, t));
                                    i = j + 1;
                                }
                                None => {
                                    if !w.only_end {
                                        let mut t = with_start;
                                        bind_window_vars_opt(&mut t, w.end.as_ref(), &items, n - 1);
                                        windows.push((i, n - 1, t));
                                    }
                                    i = n;
                                }
                            }
                        }
                        None => {
                            // Tumbling without end: the window runs to
                            // just before the next start match.
                            let mut j = i + 1;
                            let mut next_start = n;
                            while j < n {
                                let (starts, _) = eval_cond(&w.start, &tuple, j, env)?;
                                if starts {
                                    next_start = j;
                                    break;
                                }
                                j += 1;
                            }
                            windows.push((i, next_start - 1, with_start));
                            i = next_start;
                        }
                    }
                }
            }

            for (s_idx, e_idx, mut t) in windows {
                t[w.slot] = Arc::new(items[s_idx..=e_idx].to_vec());
                out.push(t);
            }
        }
        Ok(out)
    }

    /// Evaluate the order-by key values for the current tuple.
    pub(crate) fn order_keys(
        &self,
        specs: &[OrderSpecIr],
        env: &mut Env,
    ) -> EngineResult<OrderKeys> {
        let mut keys = Vec::with_capacity(specs.len());
        for spec in specs {
            let v = self.eval(&spec.expr, env)?;
            let key = opt_atomic(&v, "order by key")?;
            // Untyped order keys compare as strings (XQuery 1.0 rule).
            keys.push(key.map(untyped_to_string));
        }
        Ok(keys)
    }

    fn apply_order_by(
        &self,
        ob: &OrderByIr,
        tuples: Vec<Tuple>,
        env: &mut Env,
    ) -> EngineResult<Vec<Tuple>> {
        let mut keyed: Vec<(OrderKeys, Tuple)> = Vec::with_capacity(tuples.len());
        for tuple in tuples {
            env.slots = tuple;
            let keys = self.order_keys(&ob.specs, env)?;
            keyed.push((keys, std::mem::take(&mut env.slots)));
        }
        sort_keyed(&mut keyed, &ob.specs)?;
        Ok(keyed.into_iter().map(|(_, t)| t).collect())
    }

    fn apply_group_by(
        &self,
        g: &GroupByIr,
        tuples: Vec<Tuple>,
        env: &mut Env,
    ) -> EngineResult<Vec<Tuple>> {
        struct Group {
            /// One key sequence per grouping variable.
            keys: Vec<Sequence>,
            /// The first member tuple (source of outer-variable values
            /// for the output tuple; pre-group slots in it are hidden by
            /// the compiler's §3.2 scope rule).
            base: Tuple,
            /// Collected nest entries: per nest binding, per member.
            nests: Vec<Vec<(OrderKeys, Sequence)>>,
        }

        let stats = &self.stats;
        stats.add_tuples_grouped(tuples.len() as u64);

        let has_using = g.keys.iter().any(|k| k.using.is_some());
        let mut groups: Vec<Group> = Vec::new();
        let mut index = GroupIndex::new();
        let mut scratch = String::new();

        for tuple in tuples {
            env.slots = tuple;
            // Grouping keys and nest values are computed in the
            // pre-group scope, per input tuple.
            let mut key_vals: Vec<Sequence> = Vec::with_capacity(g.keys.len());
            for key in &g.keys {
                key_vals.push(self.eval(&key.expr, env)?);
            }
            let mut nest_vals: Vec<(OrderKeys, Sequence)> = Vec::with_capacity(g.nests.len());
            for nest in &g.nests {
                let value = self.eval(&nest.expr, env)?;
                let okeys = match &nest.order_by {
                    Some(ob) => self.order_keys(&ob.specs, env)?,
                    None => Vec::new(),
                };
                nest_vals.push((okeys, value));
            }
            let tuple = std::mem::take(&mut env.slots);

            let group_idx = if has_using {
                // Custom equality (§3.3): linear scan with the
                // user-supplied comparator for `using` keys and
                // deep-equal for the rest.
                let mut found = None;
                'groups: for (gi, group) in groups.iter().enumerate() {
                    for (key, (stored, candidate)) in
                        g.keys.iter().zip(group.keys.iter().zip(&key_vals))
                    {
                        let equal = match key.using {
                            Some(fid) => {
                                let result = self.call_user_values(
                                    fid,
                                    vec![stored.clone(), candidate.clone()],
                                )?;
                                effective_boolean_value(&result).map_err(EngineError::from)?
                            }
                            None => deep_equal(stored, candidate),
                        };
                        if !equal {
                            continue 'groups;
                        }
                    }
                    found = Some(gi);
                    break;
                }
                found
            } else {
                index
                    .find_or_insert_buf(&mut scratch, &key_vals, groups.len(), |i| {
                        groups[i].keys.as_slice()
                    })
                    .ok()
            };

            match group_idx {
                Some(gi) => {
                    for (slot, entry) in groups[gi].nests.iter_mut().zip(nest_vals) {
                        slot.push(entry);
                    }
                }
                None => {
                    groups.push(Group {
                        keys: key_vals,
                        base: tuple,
                        nests: nest_vals.into_iter().map(|e| vec![e]).collect(),
                    });
                }
            }
        }

        stats.add_groups_emitted(groups.len() as u64);

        // Emit one output tuple per group, in order of first appearance
        // (the ordering-mode=ordered behaviour; with no order by the
        // result order of a grouped FLWOR is implementation-defined,
        // §3.4.2 — ours is first-appearance order, which is stable).
        let mut out = Vec::with_capacity(groups.len());
        for group in groups {
            let mut tuple = group.base;
            for (key, vals) in g.keys.iter().zip(group.keys) {
                tuple[key.slot] = Arc::new(vals);
            }
            for (nest, mut entries) in g.nests.iter().zip(group.nests) {
                if let Some(ob) = &nest.order_by {
                    sort_keyed(&mut entries, &ob.specs)?;
                }
                let mut seq = Vec::new();
                for (_, mut vals) in entries {
                    // Nest values concatenate into one flat sequence —
                    // "merged and lose their individual identity" (§3.1).
                    seq.append(&mut vals);
                }
                tuple[nest.slot] = Arc::new(seq);
            }
            out.push(tuple);
        }
        Ok(out)
    }
}

/// Stable-sort `(keys, payload)` pairs by the order specs. Errors from
/// incomparable keys are surfaced after the sort.
pub(crate) fn sort_keyed<T>(
    items: &mut [(OrderKeys, T)],
    specs: &[OrderSpecIr],
) -> EngineResult<()> {
    let mut failure: Option<EngineError> = None;
    items.sort_by(|(a, _), (b, _)| {
        if failure.is_some() {
            return Ordering::Equal;
        }
        match compare_order_keys(a, b, specs) {
            Ok(ord) => ord,
            Err(e) => {
                failure = Some(e);
                Ordering::Equal
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Compare two key tuples under the specs (major key first). The empty
/// sequence sorts least by default, greatest under `empty greatest`;
/// `descending` reverses the whole comparison for that key.
pub(crate) fn compare_order_keys(
    a: &OrderKeys,
    b: &OrderKeys,
    specs: &[OrderSpecIr],
) -> EngineResult<Ordering> {
    debug_assert_eq!(a.len(), specs.len());
    for ((ka, kb), spec) in a.iter().zip(b).zip(specs) {
        let ord = match (ka, kb) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => {
                if spec.empty_greatest {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Some(_), None) => {
                if spec.empty_greatest {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Some(x), Some(y)) => sort_compare(x, y).map_err(|_| {
                EngineError::dynamic(
                    ErrorCode::XPTY0004,
                    format!(
                        "order by keys are not comparable ({} vs {})",
                        x.atomic_type(),
                        y.atomic_type()
                    ),
                )
            })?,
        };
        let ord = if spec.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return Ok(ord);
        }
    }
    Ok(Ordering::Equal)
}

/// Bind a window condition's variables on the tuple for boundary `i`.
fn bind_window_vars(t: &mut Tuple, cond: &WindowCondIr, items: &[Item], i: usize) {
    if let Some(slot) = cond.item_slot {
        t[slot] = Arc::new(vec![items[i].clone()]);
    }
    if let Some(slot) = cond.at_slot {
        t[slot] = Arc::new(vec![Item::from(i as i64 + 1)]);
    }
    if let Some(slot) = cond.previous_slot {
        t[slot] = Arc::new(if i > 0 {
            vec![items[i - 1].clone()]
        } else {
            Vec::new()
        });
    }
    if let Some(slot) = cond.next_slot {
        t[slot] = Arc::new(
            items
                .get(i + 1)
                .map(|x| vec![x.clone()])
                .unwrap_or_default(),
        );
    }
}

fn bind_window_vars_opt(t: &mut Tuple, cond: Option<&WindowCondIr>, items: &[Item], i: usize) {
    if let Some(cond) = cond {
        bind_window_vars(t, cond, items, i);
    }
}
