//! Plan rendering ("explain") for compiled queries.
//!
//! Renders the IR as an indented operator tree. The motivating use is
//! the paper's argument made visible: the Table-1 `Qgb` plan is a
//! single scan feeding one `GroupBy`, while the `Q` plan is a
//! `distinct-values` scan with a *nested re-scan per tuple*.

use crate::bytecode::ExprPlan;
use crate::functions::Builtin;
use crate::ir::*;
use crate::profile::QueryProfile;
use std::fmt::Write;

/// Render a whole compiled query. Eligible FLWOR pipelines are
/// annotated `[parallel ×N]` with the thread count the query would
/// resolve at run time.
pub fn explain_query(query: &CompiledQuery) -> String {
    let threads = crate::resolve_threads(query.threads);
    let mut out = String::new();
    for (i, g) in query.globals.iter().enumerate() {
        let _ = writeln!(out, "global ${} (slot g{i}):", g.name);
        write_ir(&mut out, threads, &g.init, 1);
    }
    for f in &query.functions {
        let _ = writeln!(out, "function {}#{}:", f.name, f.arity);
        write_ir(&mut out, threads, &f.body, 1);
    }
    let _ = writeln!(
        out,
        "query body (frame size {}, streaming pipeline):",
        query.frame_size,
    );
    write_ir(&mut out, threads, &query.body, 1);
    out
}

/// Render a measured profile as `explain analyze` text: every executed
/// pipeline with per-operator batch/tuple counts and self time, next to
/// the plan's `[heap]` / `[materializes]` tags.
pub fn explain_analyze(profile: &QueryProfile) -> String {
    let mut out = String::from("explain analyze:\n");
    if profile.is_empty() {
        out.push_str("  (no streaming pipeline executed)\n");
        return out;
    }
    for (i, p) in profile.pipelines.iter().enumerate() {
        let _ = writeln!(
            out,
            "pipeline #{i} ({} execution(s), total {}):",
            p.executions,
            fmt_time(p.total_nanos())
        );
        if p.workers > 1 {
            let _ = writeln!(out, "  plan: {} [parallel ×{}]", p.signature(), p.workers);
        } else {
            let _ = writeln!(out, "  plan: {}", p.signature());
        }
        for op in &p.ops {
            let mut row = format!(
                "  {:<32} batches={:<6} tuples_in={:<8} tuples_out={:<8} time={}",
                op.label(),
                op.batches,
                op.tuples_in,
                op.tuples_out,
                fmt_time(op.nanos)
            );
            if let (Some(est), Some(q)) = (op.estimate, op.q_error()) {
                let _ = write!(row, " est/actual={}/{} (q={:.1})", est, op.tuples_out, q);
            }
            let _ = writeln!(out, "{row}");
        }
    }
    let _ = writeln!(
        out,
        "seq copies: items_copied={} clones_shared={}",
        profile.seq_items_copied, profile.seq_clones_shared
    );
    let _ = writeln!(
        out,
        "index scans: hits={} index_tuples={} walk_tuples={}",
        profile.scan_index_hits, profile.scan_index_tuples, profile.scan_walk_tuples
    );
    let _ = writeln!(
        out,
        "expr: compiled={} fallback={}",
        profile.expr_compiled, profile.expr_fallback
    );
    if let Some(m) = profile.worst_misestimate() {
        let _ = writeln!(
            out,
            "worst misestimate: {} est={} actual={} (q={:.1})",
            m.label, m.estimated, m.actual, m.q_error
        );
    }
    out
}

/// A stable fingerprint of the rewritten plan: FNV-1a (64-bit) over the
/// full `explain` rendering — clause structure, operator plan, access
/// paths, expression-compilation tags and the resolved parallel
/// annotation all feed the hash, so two requests share a fingerprint
/// exactly when the optimizer produced the same plan shape. FNV-1a is
/// spelled out here (not `DefaultHasher`) so fingerprints are stable
/// across Rust releases and processes — they key the service's
/// flight-recorder aggregation and may be logged or compared offline.
pub fn plan_fingerprint(query: &CompiledQuery) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in explain_query(query).bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn fmt_time(nanos: u64) -> String {
    format!("{:.3}ms", nanos as f64 / 1_000_000.0)
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    pad(out, depth);
    out.push_str(text);
    out.push('\n');
}

fn write_ir(out: &mut String, threads: usize, ir: &Ir, depth: usize) {
    match ir {
        Ir::Str(s) => line(out, depth, &format!("string {s:?}")),
        Ir::Int(v) => line(out, depth, &format!("integer {v}")),
        Ir::Dec(v) => line(out, depth, &format!("decimal {v}")),
        Ir::Dbl(v) => line(out, depth, &format!("double {v}")),
        Ir::Empty => line(out, depth, "empty-sequence"),
        Ir::Seq(items) => {
            line(out, depth, "sequence");
            for item in items {
                write_ir(out, threads, item, depth + 1);
            }
        }
        Ir::Var(slot) => line(out, depth, &format!("var slot{slot}")),
        Ir::Global(g) => line(out, depth, &format!("global g{g}")),
        Ir::ContextItem => line(out, depth, "context-item"),
        Ir::Range(a, b) => {
            line(out, depth, "range");
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::Arith(op, a, b) => {
            line(out, depth, &format!("arith {op:?}"));
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::Neg(a) => {
            line(out, depth, "negate");
            write_ir(out, threads, a, depth + 1);
        }
        Ir::GeneralComp(op, a, b) => {
            line(out, depth, &format!("general-compare {op:?} (existential)"));
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::ValueComp(op, a, b) => {
            line(out, depth, &format!("value-compare {op:?}"));
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::NodeComp(op, a, b) => {
            line(out, depth, &format!("node-compare {op:?}"));
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::And(a, b) => {
            line(out, depth, "and");
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::Or(a, b) => {
            line(out, depth, "or");
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::SetOp(op, a, b) => {
            line(out, depth, &format!("set-op {op:?}"));
            write_ir(out, threads, a, depth + 1);
            write_ir(out, threads, b, depth + 1);
        }
        Ir::If(c, t, e) => {
            line(out, depth, "if");
            write_ir(out, threads, c, depth + 1);
            line(out, depth, "then");
            write_ir(out, threads, t, depth + 1);
            line(out, depth, "else");
            write_ir(out, threads, e, depth + 1);
        }
        Ir::Quantified {
            kind,
            bindings,
            satisfies,
        } => {
            line(out, depth, &format!("quantified {kind:?}"));
            for (slot, expr) in bindings {
                line(out, depth + 1, &format!("bind slot{slot} in"));
                write_ir(out, threads, expr, depth + 2);
            }
            line(out, depth + 1, "satisfies");
            write_ir(out, threads, satisfies, depth + 2);
        }
        Ir::Flwor(f) => {
            line(out, depth, "FLWOR");
            line(
                out,
                depth + 1,
                &format!("pipeline: {}", render_plan(f, threads)),
            );
            for (i, clause) in f.clauses.iter().enumerate() {
                let plan = f.programs.get(i).and_then(Option::as_ref);
                let join = f.joins.get(i).and_then(Option::as_ref);
                write_clause(out, threads, clause, plan, join, depth + 1);
            }
            match f.return_at {
                Some(slot) => line(out, depth + 1, &format!("return at slot{slot}")),
                None => line(out, depth + 1, "return"),
            }
            write_ir(out, threads, &f.return_expr, depth + 2);
        }
        Ir::Path(p) => {
            let start = match &p.start {
                PathStartIr::Context => "context".to_string(),
                PathStartIr::Root => "root".to_string(),
                PathStartIr::Expr(_) => "expr".to_string(),
            };
            line(
                out,
                depth,
                &format!("path from {start}{}", describe_access(p)),
            );
            if let PathStartIr::Expr(e) = &p.start {
                write_ir(out, threads, e, depth + 1);
            }
            for step in &p.steps {
                match step {
                    StepIr::Axis {
                        axis,
                        test,
                        predicates,
                    } => {
                        line(
                            out,
                            depth + 1,
                            &format!(
                                "step {axis:?}::{}{}",
                                describe_test(test),
                                preds(predicates)
                            ),
                        );
                        for p in predicates {
                            write_ir(out, threads, p, depth + 2);
                        }
                    }
                    StepIr::Expr { expr, predicates } => {
                        line(out, depth + 1, &format!("step expr{}", preds(predicates)));
                        write_ir(out, threads, expr, depth + 2);
                        for p in predicates {
                            write_ir(out, threads, p, depth + 2);
                        }
                    }
                }
            }
        }
        Ir::Filter { base, predicates } => {
            line(out, depth, &format!("filter{}", preds(predicates)));
            write_ir(out, threads, base, depth + 1);
            for p in predicates {
                write_ir(out, threads, p, depth + 1);
            }
        }
        Ir::CallBuiltin(b, args) => {
            line(out, depth, &format!("call fn:{}", builtin_name(*b)));
            for a in args {
                write_ir(out, threads, a, depth + 1);
            }
        }
        Ir::CallUser(id, args) => {
            line(out, depth, &format!("call user#{id}"));
            for a in args {
                write_ir(out, threads, a, depth + 1);
            }
        }
        Ir::Element(el) => {
            line(out, depth, &format!("construct element <{}>", el.name));
            for (name, parts) in &el.attributes {
                line(out, depth + 1, &format!("attribute {name}"));
                for part in parts {
                    match part {
                        AttrPartIr::Literal(s) => line(out, depth + 2, &format!("literal {s:?}")),
                        AttrPartIr::Enclosed(e) => write_ir(out, threads, e, depth + 2),
                    }
                }
            }
            for part in &el.content {
                match part {
                    ContentIr::Literal(s) => line(out, depth + 1, &format!("text {s:?}")),
                    ContentIr::Enclosed(e) => {
                        line(out, depth + 1, "enclosed");
                        write_ir(out, threads, e, depth + 2);
                    }
                    ContentIr::Child(e) => write_ir(out, threads, e, depth + 1),
                }
            }
        }
        Ir::Attribute { name, value } => {
            line(out, depth, &format!("construct attribute {name}"));
            if let Some(v) = value {
                write_ir(out, threads, v, depth + 1);
            }
        }
        Ir::Text(content) => {
            line(out, depth, "construct text");
            if let Some(c) = content {
                write_ir(out, threads, c, depth + 1);
            }
        }
        Ir::Comment(text) => line(out, depth, &format!("construct comment {text:?}")),
        Ir::Pi(target, _) => line(out, depth, &format!("construct pi <?{target}?>")),
        Ir::InstanceOf(a, _) => {
            line(out, depth, "instance-of");
            write_ir(out, threads, a, depth + 1);
        }
        Ir::Cast(a, target, _) => {
            line(out, depth, &format!("cast as {target:?}"));
            write_ir(out, threads, a, depth + 1);
        }
        Ir::Castable(a, target, _) => {
            line(out, depth, &format!("castable as {target:?}"));
            write_ir(out, threads, a, depth + 1);
        }
    }
}

/// The clause-line suffix naming how the clause's expression runs:
/// through a compiled bytecode program, through the tree-walker after
/// lowering declined, or unannotated when the expression-compilation
/// pass never ran (tree mode, or IR compiled without an engine).
fn expr_tag(plan: Option<&ExprPlan>) -> &'static str {
    match plan {
        Some(ExprPlan::Compiled(_)) => " [compiled]",
        Some(ExprPlan::Interpreted) => " [interpreted]",
        None => "",
    }
}

fn write_clause(
    out: &mut String,
    threads: usize,
    clause: &ClauseIr,
    plan: Option<&ExprPlan>,
    join: Option<&JoinIr>,
    depth: usize,
) {
    // The `[hash join key=…]` tag on a join-annotated `let` / `where`:
    // the clause runs as a HashJoin probe, not by re-evaluating the
    // nested expression per tuple.
    let join_tag = join
        .map(|j| format!(" [hash join {}]", j.key_desc))
        .unwrap_or_default();
    match clause {
        ClauseIr::For {
            slot,
            at_slot,
            expr,
            ..
        } => {
            let at = at_slot.map(|s| format!(" at slot{s}")).unwrap_or_default();
            line(
                out,
                depth,
                &format!("for slot{slot}{at} in{}", expr_tag(plan)),
            );
            write_ir(out, threads, expr, depth + 1);
        }
        ClauseIr::Let { slot, expr, .. } => {
            line(
                out,
                depth,
                &format!("let slot{slot} :={}{join_tag}", expr_tag(plan)),
            );
            write_ir(out, threads, expr, depth + 1);
        }
        ClauseIr::Where(cond) => {
            line(out, depth, &format!("where{}{join_tag}", expr_tag(plan)));
            write_ir(out, threads, cond, depth + 1);
        }
        ClauseIr::Count { slot } => {
            line(out, depth, &format!("count slot{slot}"));
        }
        ClauseIr::Window(w) => {
            line(
                out,
                depth,
                &format!(
                    "window {} -> slot{}{}",
                    if w.sliding { "sliding" } else { "tumbling" },
                    w.slot,
                    if w.only_end { " (only end)" } else { "" }
                ),
            );
            write_ir(out, threads, &w.expr, depth + 1);
            line(out, depth + 1, "start when");
            write_ir(out, threads, &w.start.when, depth + 2);
            if let Some(end) = &w.end {
                line(out, depth + 1, "end when");
                write_ir(out, threads, &end.when, depth + 2);
            }
        }
        ClauseIr::GroupBy(g) => {
            line(out, depth, "group-by (hash, deep-equal)");
            for key in &g.keys {
                let using = match key.using {
                    Some(id) => format!(" using user#{id} (linear probe)"),
                    None => String::new(),
                };
                line(out, depth + 1, &format!("key -> slot{}{using}", key.slot));
                write_ir(out, threads, &key.expr, depth + 2);
            }
            for nest in &g.nests {
                let ordered = if nest.order_by.is_some() {
                    " (ordered)"
                } else {
                    ""
                };
                line(
                    out,
                    depth + 1,
                    &format!("nest -> slot{}{ordered}", nest.slot),
                );
                write_ir(out, threads, &nest.expr, depth + 2);
                if let Some(ob) = &nest.order_by {
                    for spec in &ob.specs {
                        line(
                            out,
                            depth + 2,
                            &format!("order key{}", if spec.descending { " desc" } else { "" }),
                        );
                        write_ir(out, threads, &spec.expr, depth + 3);
                    }
                }
            }
        }
        ClauseIr::OrderBy(ob) => {
            line(
                out,
                depth,
                if ob.stable {
                    "order-by (stable)"
                } else {
                    "order-by"
                },
            );
            for spec in &ob.specs {
                line(
                    out,
                    depth + 1,
                    &format!("key{}", if spec.descending { " desc" } else { "" }),
                );
                write_ir(out, threads, &spec.expr, depth + 2);
            }
        }
    }
}

/// Render the compiled operator plan as a `->` chain. Operators without
/// an annotation stream tuples batch-at-a-time; pipeline breakers are
/// marked `[materializes]`, and a bounded top-k order-by shows its
/// `limit` and `[heap]` mode. A chain that is parallel-eligible and
/// would resolve to more than one thread gets a `[parallel ×N]` suffix.
pub(crate) fn render_plan(f: &FlworIr, threads: usize) -> String {
    let mut parts: Vec<String> = f
        .plan
        .iter()
        .zip(&f.clauses)
        .enumerate()
        .map(|(i, (op, clause))| match op {
            PlanOpIr::ForScan => "ForScan".to_string(),
            PlanOpIr::LetBind => "LetBind".to_string(),
            PlanOpIr::Filter => "Filter".to_string(),
            PlanOpIr::CountBind => "CountBind".to_string(),
            PlanOpIr::WindowScan => "WindowScan".to_string(),
            PlanOpIr::GroupConsume => "GroupConsume [materializes]".to_string(),
            PlanOpIr::OrderBy => match clause {
                ClauseIr::OrderBy(ob) if ob.limit.is_some() => {
                    format!("OrderBy(limit={}) [heap]", ob.limit.unwrap())
                }
                _ => "OrderBy [materializes]".to_string(),
            },
            PlanOpIr::HashJoin => match f.joins.get(i).and_then(Option::as_ref) {
                Some(j) => format!("HashJoin({})", j.key_desc),
                None => "HashJoin".to_string(),
            },
        })
        .collect();
    parts.push("ReturnAt".to_string());
    let mut plan = parts.join(" -> ");
    if f.parallel && threads > 1 {
        let _ = write!(plan, " [parallel ×{threads}]");
    }
    plan
}

/// The `[index scan ...]` plan tag for an index-annotated path: the
/// leading descendant step resolves via the document store instead of a
/// tree walk (with per-document fallback at run time).
fn describe_access(p: &PathIr) -> String {
    let name = match p.steps.first() {
        Some(StepIr::Axis {
            test: NodeTestIr::Name(q),
            ..
        }) => q.to_string(),
        _ => "?".to_string(),
    };
    match &p.access {
        AccessPathIr::Walk => String::new(),
        AccessPathIr::IndexDescendant => format!(" [index scan path=//{name}]"),
        AccessPathIr::IndexValueEq { child, probe } => {
            let probe = match probe {
                ValueProbeIr::Str(s) => format!("{s:?}"),
                ValueProbeIr::Num(v) => format!("{v}"),
            };
            format!(" [index scan path=//{name} value-eq {child}={probe}]")
        }
    }
}

fn preds(predicates: &[Ir]) -> String {
    if predicates.is_empty() {
        String::new()
    } else {
        format!(" [{} predicate(s)]", predicates.len())
    }
}

fn describe_test(test: &NodeTestIr) -> String {
    match test {
        NodeTestIr::Name(q) => q.to_string(),
        NodeTestIr::Wildcard => "*".to_string(),
        NodeTestIr::AnyKind => "node()".to_string(),
        NodeTestIr::Text => "text()".to_string(),
        NodeTestIr::Comment => "comment()".to_string(),
        NodeTestIr::Pi(Some(t)) => format!("processing-instruction({t})"),
        NodeTestIr::Pi(None) => "processing-instruction()".to_string(),
        NodeTestIr::Element(Some(q)) => format!("element({q})"),
        NodeTestIr::Element(None) => "element()".to_string(),
        NodeTestIr::Attribute(Some(q)) => format!("attribute({q})"),
        NodeTestIr::Attribute(None) => "attribute()".to_string(),
        NodeTestIr::Document => "document-node()".to_string(),
    }
}

fn builtin_name(b: Builtin) -> String {
    format!("{b:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use xqa_frontend::parse_query;

    fn explain(src: &str) -> String {
        let module = parse_query(src).expect("parse");
        let compiled = compile::compile(&module).expect("compile");
        explain_query(&compiled)
    }

    #[test]
    fn qgb_plan_shows_single_scan_and_groupby() {
        let plan = explain(
            "for $li in //order/lineitem \
             group by $li/shipmode into $a \
             nest $li into $items \
             return count($items)",
        );
        assert!(plan.contains("FLWOR"), "{plan}");
        assert!(plan.contains("group-by (hash, deep-equal)"), "{plan}");
        assert!(plan.contains("step DescendantOrSelf::node()"), "{plan}");
        // exactly one descendant scan in the whole plan
        assert_eq!(plan.matches("DescendantOrSelf").count(), 1, "{plan}");
    }

    #[test]
    fn q_plan_shows_nested_rescan() {
        let plan = explain(
            "for $a in distinct-values(//order/lineitem/shipmode) \
             let $items := for $i in //order/lineitem where $i/shipmode = $a return $i \
             return count($items)",
        );
        // two descendant scans: one under distinct-values, one nested
        // inside the let (re-executed per tuple)
        assert_eq!(plan.matches("DescendantOrSelf").count(), 2, "{plan}");
        assert!(!plan.contains("group-by"), "{plan}");
        assert!(plan.contains("general-compare"), "{plan}");
    }

    #[test]
    fn using_and_ordered_nest_are_annotated() {
        let plan = explain(
            "declare function local:eq($a as item()*, $b as item()*) as xs:boolean { true() }; \
             for $x in (1, 2) \
             group by $x into $k using local:eq \
             nest $x order by $x into $xs \
             return $k",
        );
        assert!(plan.contains("using user#0 (linear probe)"), "{plan}");
        assert!(
            plan.contains("nest -> slot") && plan.contains("(ordered)"),
            "{plan}"
        );
        assert!(plan.contains("function local:eq#2"), "{plan}");
    }

    #[test]
    fn fingerprint_is_stable_and_discriminates_plans() {
        let compile = |src: &str| {
            let module = parse_query(src).expect("parse");
            compile::compile(&module).expect("compile")
        };
        let a = compile("for $x in 1 to 10 return $x");
        let b = compile("for $x in 1 to 10 return $x");
        let c = compile("for $x in 1 to 10 order by $x return $x");
        assert_eq!(plan_fingerprint(&a), plan_fingerprint(&b));
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&c));
        // Whitespace-only source differences share a plan shape.
        let d = compile("for   $x in 1 to 10   return $x");
        assert_eq!(plan_fingerprint(&a), plan_fingerprint(&d));
    }

    #[test]
    fn globals_and_return_at_render() {
        let plan = explain(
            "declare variable $n := 3; \
             for $x in (1, 2) order by $x return at $r ($r + $n)",
        );
        assert!(plan.contains("global $n (slot g0)"), "{plan}");
        assert!(plan.contains("return at slot"), "{plan}");
        assert!(plan.contains("order-by"), "{plan}");
    }
}
