//! Optimizer rewrites: implicit group-by detection (AST level) and
//! top-k pushdown into `order by` ([`pushdown_topk`], IR level).
//!
//! The paper argues (§2, §7) that recognizing grouping expressed in
//! XQuery-1.0 style — `distinct-values` over a path plus a correlated
//! self-join — is possible for simple patterns but "extremely difficult"
//! in general, which motivates the explicit syntax. This module
//! implements the detection for exactly the two templates of the
//! paper's Table 1:
//!
//! ```text
//! for $a in distinct-values(P/a) (, $b in distinct-values(P/b))?
//! let $items := for $i in P where $i/a = $a (and $i/b = $b)? return $i
//! (where exists($items))?
//! return BODY
//! ```
//!
//! rewriting it to the explicit plan
//!
//! ```text
//! for $item in P
//! group by data($item/a) into $a (, data($item/b) into $b)?
//! nest $item into $items
//! return BODY
//! ```
//!
//! **Equivalence caveat** (this *is* the paper's point): the rewrite is
//! only sound when every item of `P` has exactly one `a` (and `b`)
//! child — items *missing* the key produce no group in the original but
//! an empty-sequence group in the rewritten plan. The paper's workload
//! guarantees "each grouping element occurred exactly once in its
//! parent", and so does ours. The rewrite is opt-in
//! ([`crate::EngineOptions::detect_implicit_groupby`]) and is benchmarked
//! in the `ablation` bench.

use xqa_frontend::ast::*;

/// The fresh variable bound to the scanned item in rewritten plans.
const FRESH_ITEM_VAR: &str = "xqa--rewrite-item";

/// Walk the module body, rewriting every FLWOR that matches the Table-1
/// implicit-grouping template. Returns a description per fired rewrite.
pub fn detect_implicit_groupby(module: &mut Module) -> Vec<String> {
    let mut fired = Vec::new();
    rewrite_expr(&mut module.body, &mut fired);
    for f in &mut module.prolog.functions {
        rewrite_expr(&mut f.body, &mut fired);
    }
    for v in &mut module.prolog.variables {
        rewrite_expr(&mut v.init, &mut fired);
    }
    fired
}

fn rewrite_expr(e: &mut Expr, fired: &mut Vec<String>) {
    // Try the match at this node first; then recurse into children
    // (including the rewritten form's return clause).
    if let ExprKind::Flwor(f) = &mut e.kind {
        if let Some(desc) = try_rewrite_flwor(f) {
            fired.push(desc);
        }
    }
    for child in subexpressions_mut(e) {
        rewrite_expr(child, fired);
    }
}

/// Attempt the Table-1 match on one FLWOR; rewrite in place on success.
fn try_rewrite_flwor(f: &mut Flwor) -> Option<String> {
    if f.group_by.is_some() || !f.post_group_clauses.is_empty() || f.post_group_where.is_some() {
        return None;
    }
    // Shape: exactly one for-clause (1..=2 bindings) then one let-clause
    // (1 binding).
    if f.clauses.len() != 2 {
        return None;
    }
    let key_bindings: Vec<(String, Path, Name)> = match &f.clauses[0] {
        InitialClause::For(bindings) if (1..=2).contains(&bindings.len()) => {
            let mut keys = Vec::new();
            for b in bindings {
                if b.at.is_some() {
                    return None;
                }
                let (source, key) = match_distinct_values(&b.expr)?;
                keys.push((b.var.clone(), source, key));
            }
            keys
        }
        _ => return None,
    };
    // All distinct-values calls must scan the same source path.
    let source = key_bindings[0].1.clone();
    if !key_bindings.iter().all(|(_, p, _)| *p == source) {
        return None;
    }
    let (items_var, inner_var) = match &f.clauses[1] {
        InitialClause::Let(bindings) if bindings.len() == 1 => {
            let b = &bindings[0];
            let inner = match_self_join(&b.expr, &source, &key_bindings)?;
            (b.var.clone(), inner)
        }
        _ => return None,
    };
    let _ = inner_var;
    // Outer where must be absent or `exists($items)`.
    if let Some(w) = &f.where_clause {
        if !is_exists_of(w, &items_var) {
            return None;
        }
    }

    // Build the explicit plan.
    let span = Span::default();
    let item_var_ref = Expr::new(ExprKind::VarRef(FRESH_ITEM_VAR.to_string()), span);
    let keys = key_bindings
        .iter()
        .map(|(var, _, key)| GroupKey {
            expr: Expr::new(
                ExprKind::FunctionCall {
                    name: Name::local("data"),
                    args: vec![Expr::new(
                        ExprKind::Path(Box::new(Path {
                            start: PathStart::Expr(item_var_ref.clone()),
                            steps: vec![Step::Axis(AxisStep {
                                axis: Axis::Child,
                                test: NodeTest::Name(key.clone()),
                                predicates: Vec::new(),
                            })],
                        })),
                        span,
                    )],
                },
                span,
            ),
            var: var.clone(),
            using: None,
        })
        .collect();
    let nests = vec![NestBinding {
        expr: item_var_ref,
        order_by: None,
        var: items_var,
    }];
    let description = format!(
        "implicit group-by detected: distinct-values self-join over {} key(s) \
         rewritten to explicit group by",
        key_bindings.len()
    );
    f.clauses = vec![InitialClause::For(vec![ForBinding {
        var: FRESH_ITEM_VAR.to_string(),
        at: None,
        ty: None,
        expr: Expr::new(ExprKind::Path(Box::new(source)), span),
    }])];
    f.where_clause = None;
    f.group_by = Some(GroupByClause { keys, nests });
    Some(description)
}

/// Match `distinct-values(P/key)` where `key` is a trailing child name
/// step; returns (P, key).
fn match_distinct_values(e: &Expr) -> Option<(Path, Name)> {
    let ExprKind::FunctionCall { name, args } = &e.kind else {
        return None;
    };
    if name.prefix.as_deref().map(|p| p != "fn").unwrap_or(false) || name.local != "distinct-values"
    {
        return None;
    }
    let [arg] = args.as_slice() else { return None };
    let ExprKind::Path(p) = &arg.kind else {
        return None;
    };
    let mut steps = p.steps.clone();
    let last = steps.pop()?;
    let Step::Axis(AxisStep {
        axis: Axis::Child,
        test: NodeTest::Name(key),
        predicates,
    }) = last
    else {
        return None;
    };
    if !predicates.is_empty() {
        return None;
    }
    Some((
        Path {
            start: p.start.clone(),
            steps,
        },
        key,
    ))
}

/// Match the correlated self-join
/// `for $i in P where $i/k1 = $a1 (and $i/k2 = $a2)? return $i`.
/// Returns the inner variable name on success.
fn match_self_join(e: &Expr, source: &Path, keys: &[(String, Path, Name)]) -> Option<String> {
    let ExprKind::Flwor(inner) = &e.kind else {
        return None;
    };
    if inner.group_by.is_some() || inner.order_by.is_some() || inner.return_at.is_some() {
        return None;
    }
    let [InitialClause::For(bindings)] = inner.clauses.as_slice() else {
        return None;
    };
    let [binding] = bindings.as_slice() else {
        return None;
    };
    if binding.at.is_some() {
        return None;
    }
    let ExprKind::Path(scan) = &binding.expr.kind else {
        return None;
    };
    if **scan != *source {
        return None;
    }
    let inner_var = binding.var.clone();
    // return must be exactly $i
    if !matches!(&inner.return_expr.kind, ExprKind::VarRef(v) if *v == inner_var) {
        return None;
    }
    // where: conjunction of $i/k = $a covering every key exactly once.
    let where_clause = inner.where_clause.as_ref()?;
    let mut conjuncts = Vec::new();
    collect_conjuncts(where_clause, &mut conjuncts);
    if conjuncts.len() != keys.len() {
        return None;
    }
    let mut matched = vec![false; keys.len()];
    for c in conjuncts {
        let (step_name, var) = match_key_equality(c, &inner_var)?;
        let idx = keys
            .iter()
            .position(|(kvar, _, kname)| *kvar == var && *kname == step_name)?;
        if matched[idx] {
            return None;
        }
        matched[idx] = true;
    }
    matched.iter().all(|&m| m).then_some(inner_var)
}

fn collect_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match &e.kind {
        ExprKind::And(a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        _ => out.push(e),
    }
}

/// Match `$i/key = $var` (either operand order). Returns (key, var).
fn match_key_equality(e: &Expr, inner_var: &str) -> Option<(Name, String)> {
    let ExprKind::GeneralComp(Comparison::Eq, lhs, rhs) = &e.kind else {
        return None;
    };
    let try_sides = |path_side: &Expr, var_side: &Expr| -> Option<(Name, String)> {
        let ExprKind::VarRef(var) = &var_side.kind else {
            return None;
        };
        let ExprKind::Path(p) = &path_side.kind else {
            return None;
        };
        let PathStart::Expr(start) = &p.start else {
            return None;
        };
        if !matches!(&start.kind, ExprKind::VarRef(v) if v == inner_var) {
            return None;
        }
        let [Step::Axis(AxisStep {
            axis: Axis::Child,
            test: NodeTest::Name(key),
            predicates,
        })] = p.steps.as_slice()
        else {
            return None;
        };
        if !predicates.is_empty() {
            return None;
        }
        Some((key.clone(), var.clone()))
    };
    try_sides(lhs, rhs).or_else(|| try_sides(rhs, lhs))
}

fn is_exists_of(e: &Expr, var: &str) -> bool {
    let ExprKind::FunctionCall { name, args } = &e.kind else {
        return false;
    };
    if name.prefix.is_some() && name.prefix.as_deref() != Some("fn") {
        return false;
    }
    name.local == "exists"
        && args.len() == 1
        && matches!(&args[0].kind, ExprKind::VarRef(v) if v == var)
}

/// All direct subexpressions, for the recursive walk.
fn subexpressions_mut(e: &mut Expr) -> Vec<&mut Expr> {
    let mut out: Vec<&mut Expr> = Vec::new();
    match &mut e.kind {
        ExprKind::StringLit(_)
        | ExprKind::IntegerLit(_)
        | ExprKind::DecimalLit(_)
        | ExprKind::DoubleLit(_)
        | ExprKind::VarRef(_)
        | ExprKind::ContextItem
        | ExprKind::DirectComment(_)
        | ExprKind::DirectPi(..) => {}
        ExprKind::Sequence(items) => out.extend(items.iter_mut()),
        ExprKind::Range(a, b)
        | ExprKind::Arith(_, a, b)
        | ExprKind::GeneralComp(_, a, b)
        | ExprKind::ValueComp(_, a, b)
        | ExprKind::NodeComp(_, a, b)
        | ExprKind::And(a, b)
        | ExprKind::Or(a, b)
        | ExprKind::SetOp(_, a, b) => {
            out.push(a);
            out.push(b);
        }
        ExprKind::Unary(_, a)
        | ExprKind::InstanceOf(a, _)
        | ExprKind::CastAs(a, _, _)
        | ExprKind::CastableAs(a, _, _)
        | ExprKind::ComputedText(Some(a)) => out.push(a),
        ExprKind::ComputedText(None) => {}
        ExprKind::If {
            cond,
            then,
            otherwise,
        } => {
            out.push(cond);
            out.push(then);
            out.push(otherwise);
        }
        ExprKind::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            out.extend(bindings.iter_mut().map(|(_, e)| e));
            out.push(satisfies);
        }
        ExprKind::Flwor(f) => {
            for clause in &mut f.clauses {
                match clause {
                    InitialClause::For(bs) => out.extend(bs.iter_mut().map(|b| &mut b.expr)),
                    InitialClause::Let(bs) => out.extend(bs.iter_mut().map(|b| &mut b.expr)),
                    InitialClause::Count(_) => {}
                    InitialClause::Window(w) => {
                        out.push(&mut w.expr);
                        out.push(&mut w.start.when);
                        if let Some(end) = &mut w.end {
                            out.push(&mut end.when);
                        }
                    }
                }
            }
            if let Some(w) = &mut f.where_clause {
                out.push(w);
            }
            if let Some(g) = &mut f.group_by {
                out.extend(g.keys.iter_mut().map(|k| &mut k.expr));
                for n in &mut g.nests {
                    out.push(&mut n.expr);
                    if let Some(ob) = &mut n.order_by {
                        out.extend(ob.specs.iter_mut().map(|s| &mut s.expr));
                    }
                }
            }
            for clause in &mut f.post_group_clauses {
                if let PostGroupClause::Let(b) = clause {
                    out.push(&mut b.expr);
                }
            }
            if let Some(w) = &mut f.post_group_where {
                out.push(w);
            }
            if let Some(ob) = &mut f.order_by {
                out.extend(ob.specs.iter_mut().map(|s| &mut s.expr));
            }
            out.push(&mut f.return_expr);
        }
        ExprKind::Path(p) => {
            if let PathStart::Expr(start) = &mut p.start {
                out.push(start);
            }
            for step in &mut p.steps {
                match step {
                    Step::Axis(s) => out.extend(s.predicates.iter_mut()),
                    Step::Expr { expr, predicates } => {
                        out.push(expr);
                        out.extend(predicates.iter_mut());
                    }
                }
            }
        }
        ExprKind::Filter { base, predicates } => {
            out.push(base);
            out.extend(predicates.iter_mut());
        }
        ExprKind::FunctionCall { args, .. } => out.extend(args.iter_mut()),
        ExprKind::DirectElement(el) => {
            for (_, parts) in &mut el.attributes {
                for part in parts {
                    if let AttrPart::Enclosed(e) = part {
                        out.push(e);
                    }
                }
            }
            for part in &mut el.content {
                match part {
                    ContentPart::Enclosed(e) | ContentPart::Child(e) => out.push(e),
                    ContentPart::Literal(_) => {}
                }
            }
        }
        ExprKind::ComputedElement { content, .. } | ExprKind::ComputedAttribute { content, .. } => {
            if let Some(c) = content {
                out.push(c);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Top-k pushdown (IR level)
// ---------------------------------------------------------------------

/// Detect positional bounds over a sorted FLWOR — `(for ... order by ...
/// return E)[position() le k]`, the bare `[k]` form, or
/// `fn:subsequence(flwor, 1, k)` — and push `limit k` into the
/// [`crate::ir::OrderByIr`], so the streaming pipeline's order-by runs a
/// bounded binary heap (O(n log k)) instead of a full sort.
///
/// The residual predicate is left in place, so the rewrite never changes
/// results: the pipeline still applies the positional filter to the (at
/// most k) returned items. Limiting the *tuple* stream to k is only sound when
/// the return expression contributes exactly one item per tuple, so the
/// rewrite is gated on a conservative single-item check (constructors
/// and literals).
pub fn pushdown_topk(query: &mut crate::ir::CompiledQuery) -> Vec<String> {
    let mut fired = Vec::new();
    for g in &mut query.globals {
        let loc = format!("global ${}", g.name);
        pushdown_ir(&mut g.init, &loc, &mut fired);
    }
    for f in &mut query.functions {
        let loc = format!("function {}#{}", f.name, f.arity);
        pushdown_ir(&mut f.body, &loc, &mut fired);
    }
    pushdown_ir(&mut query.body, "query body", &mut fired);
    fired
}

fn pushdown_ir(ir: &mut crate::ir::Ir, loc: &str, fired: &mut Vec<String>) {
    use crate::ir::Ir;
    match ir {
        Ir::Filter { base, predicates } => {
            // Only a *leading* positional bound is a prefix of the tuple
            // stream; predicates after another filter see renumbered
            // positions.
            if let (Ir::Flwor(f), Some(first)) = (&mut **base, predicates.first()) {
                if let Some(k) = positional_bound(first) {
                    try_limit_flwor(f, k, loc, fired);
                }
            }
        }
        Ir::CallBuiltin(crate::functions::Builtin::Subsequence, args) => {
            if let [Ir::Flwor(_), Ir::Int(1), Ir::Int(len)] = args.as_slice() {
                let k = (*len).max(0) as usize;
                let Ir::Flwor(f) = &mut args[0] else {
                    unreachable!()
                };
                try_limit_flwor(f, k, loc, fired);
            }
        }
        _ => {}
    }
    for child in crate::fold::child_irs(ir) {
        pushdown_ir(child, loc, fired);
    }
}

/// Apply `limit k` to the FLWOR's trailing order-by, if it has one and
/// the return expression is provably one item per tuple.
fn try_limit_flwor(f: &mut crate::ir::FlworIr, k: usize, loc: &str, fired: &mut Vec<String>) {
    use crate::ir::ClauseIr;
    if !single_item_return(&f.return_expr) {
        return;
    }
    let Some(ClauseIr::OrderBy(ob)) = f.clauses.last_mut() else {
        return;
    };
    let limit = ob.limit.map_or(k, |old| old.min(k));
    ob.limit = Some(limit);
    fired.push(format!(
        "top-k pushdown: order by bounded to a {limit}-tuple heap (in {loc})"
    ));
}

/// The `k` of a positional prefix bound, if the predicate is one:
/// `position() le k`, `position() lt k`, their flipped forms, or a bare
/// integer literal `[k]` (which selects position k, contained in the
/// k-prefix).
fn positional_bound(pred: &crate::ir::Ir) -> Option<usize> {
    use crate::ir::Ir;
    use xqa_xdm::CompOp;
    let as_k = |n: i64| Some(n.max(0) as usize);
    match pred {
        Ir::Int(n) => as_k(*n),
        Ir::ValueComp(op, a, b) | Ir::GeneralComp(op, a, b) => {
            match (is_position_call(a), &**b, &**a, is_position_call(b), op) {
                (true, Ir::Int(n), _, _, CompOp::Le) => as_k(*n),
                (true, Ir::Int(n), _, _, CompOp::Lt) => as_k(*n - 1),
                (_, _, Ir::Int(n), true, CompOp::Ge) => as_k(*n),
                (_, _, Ir::Int(n), true, CompOp::Gt) => as_k(*n - 1),
                _ => None,
            }
        }
        _ => None,
    }
}

fn is_position_call(ir: &crate::ir::Ir) -> bool {
    matches!(
        ir,
        crate::ir::Ir::CallBuiltin(crate::functions::Builtin::Position, args) if args.is_empty()
    )
}

/// Conservatively: does the return expression yield exactly one item per
/// tuple? (Constructors always produce one node; literals one value.)
fn single_item_return(ir: &crate::ir::Ir) -> bool {
    use crate::ir::Ir;
    matches!(
        ir,
        Ir::Element(_)
            | Ir::Comment(_)
            | Ir::Pi(..)
            | Ir::Str(_)
            | Ir::Int(_)
            | Ir::Dec(_)
            | Ir::Dbl(_)
    )
}

// ---- descendant-step fusion ------------------------------------------

/// Fuse `descendant-or-self::node()/child::T` step pairs (the expansion
/// of `//T`) into a single `descendant::T` step.
///
/// The expanded form materializes *every* node of the subtree as an
/// intermediate sequence, document-orders it, and then runs the child
/// step once per node — on a streaming scan that intermediate dwarfs
/// the useful output. The fused form is the textbook identity: every
/// descendant is a child of exactly one `descendant-or-self` node, so
/// `descendant::T` selects the same nodes in the same order for any
/// node test `T`. Fusion is skipped when either step carries
/// predicates, because predicates are evaluated per *context* node and
/// positional predicates would renumber.
pub fn fuse_descendant_paths(query: &mut crate::ir::CompiledQuery) -> Vec<String> {
    let mut fired = Vec::new();
    let mut record = |fused: usize, loc: &str| {
        if fused > 0 {
            fired.push(format!(
                "path fusion: {fused} descendant-or-self/child step pair(s) \
                 fused into a single descendant scan (in {loc})"
            ));
        }
    };
    for g in &mut query.globals {
        let mut fused = 0usize;
        fuse_ir(&mut g.init, &mut fused);
        record(fused, &format!("global ${}", g.name));
    }
    for f in &mut query.functions {
        let mut fused = 0usize;
        fuse_ir(&mut f.body, &mut fused);
        record(fused, &format!("function {}#{}", f.name, f.arity));
    }
    let mut fused = 0usize;
    fuse_ir(&mut query.body, &mut fused);
    record(fused, "query body");
    fired
}

fn fuse_ir(ir: &mut crate::ir::Ir, fused: &mut usize) {
    if let crate::ir::Ir::Path(p) = ir {
        fuse_steps(&mut p.steps, fused);
    }
    for child in crate::fold::child_irs(ir) {
        fuse_ir(child, fused);
    }
}

fn fuse_steps(steps: &mut Vec<crate::ir::StepIr>, fused: &mut usize) {
    use crate::ir::{NodeTestIr, StepIr};
    use xqa_frontend::ast::Axis;
    let mut i = 0;
    while i + 1 < steps.len() {
        let slash_slash = matches!(
            &steps[i],
            StepIr::Axis {
                axis: Axis::DescendantOrSelf,
                test: NodeTestIr::AnyKind,
                predicates,
            } if predicates.is_empty()
        );
        let plain_child = matches!(
            &steps[i + 1],
            StepIr::Axis {
                axis: Axis::Child,
                predicates,
                ..
            } if predicates.is_empty()
        );
        if slash_slash && plain_child {
            let StepIr::Axis { test, .. } = steps.remove(i + 1) else {
                unreachable!("matched an axis step above")
            };
            steps[i] = StepIr::Axis {
                axis: Axis::Descendant,
                test,
                predicates: Vec::new(),
            };
            *fused += 1;
        }
        i += 1;
    }
}

// ---- index-scan annotation -------------------------------------------

/// In `Auto` mode, a descendant scan is only index-annotated when the
/// scanned name accounts for at most this fraction of all catalog
/// elements. Above it, the walk visits about as many nodes as the
/// posting list holds, so the index buys nothing but handle churn.
const MAX_INDEX_SELECTIVITY: f64 = 0.5;

/// Annotate leading `descendant::T` path steps with an index access
/// path (see [`crate::ir::AccessPathIr`]) when the effective mode and
/// catalog statistics favor it. Two shapes qualify:
///
/// - `descendant::T` with no predicates → [`AccessPathIr::IndexDescendant`]:
///   a label-range slice of `T`'s element postings.
/// - `descendant::T[c = literal]` (either operand order, `c` a plain
///   child name step from the context, the literal a string or numeric
///   constant) → [`AccessPathIr::IndexValueEq`]: candidate parents from
///   the typed-value index, residual predicate re-evaluated. The exact
///   shape guarantees the predicate is position-free, so prefiltering
///   cannot renumber anything; in `Auto` mode the statistics must also
///   confirm the value index answers exactly (every `c` is a leaf, and
///   for numeric probes every value parses as `xs:double` — otherwise
///   the walk could raise a cast error the index would skip).
///
/// The annotation is a plan-time *choice*, not a promise: the evaluator
/// still falls back to the walk per context item when no store covers
/// its document or the store's gates refuse, so results are always
/// byte-identical to the walk.
pub fn annotate_index_scans(
    query: &mut crate::ir::CompiledQuery,
    mode: crate::AccessPathMode,
    stats: Option<&xqa_storage::CatalogStatistics>,
) -> Vec<String> {
    use crate::AccessPathMode;
    if mode == AccessPathMode::Walk {
        return Vec::new();
    }
    if mode == AccessPathMode::Auto && stats.is_none() {
        return Vec::new();
    }
    let mut fired = Vec::new();
    let mut record = |notes: Vec<String>, loc: &str| {
        fired.extend(
            notes
                .into_iter()
                .map(|n| format!("index scan: {n} (in {loc})")),
        );
    };
    for g in &mut query.globals {
        let mut notes = Vec::new();
        annotate_ir(&mut g.init, mode, stats, &mut notes);
        record(notes, &format!("global ${}", g.name));
    }
    for f in &mut query.functions {
        let mut notes = Vec::new();
        annotate_ir(&mut f.body, mode, stats, &mut notes);
        record(notes, &format!("function {}#{}", f.name, f.arity));
    }
    let mut notes = Vec::new();
    annotate_ir(&mut query.body, mode, stats, &mut notes);
    record(notes, "query body");
    fired
}

fn annotate_ir(
    ir: &mut crate::ir::Ir,
    mode: crate::AccessPathMode,
    stats: Option<&xqa_storage::CatalogStatistics>,
    notes: &mut Vec<String>,
) {
    if let crate::ir::Ir::Path(p) = ir {
        fuse_value_eq_shape(p);
        if let Some((access, note)) = choose_access_path(p, mode, stats) {
            p.access = access;
            notes.push(note);
        }
    }
    for child in crate::fold::child_irs(ir) {
        annotate_ir(child, mode, stats, notes);
    }
}

/// Fuse the leading `descendant-or-self::node()/child::T[c = literal]`
/// pair into `descendant::T[c = literal]` so the value-eq index shape
/// can match. The general fusion pass skips predicated child steps
/// because positional predicates renumber under fusion; the value-eq
/// shape is position-free by construction (an existential `=` over a
/// plain child step and a literal), so the selected node set is
/// identical either way.
fn fuse_value_eq_shape(p: &mut crate::ir::PathIr) {
    use crate::ir::{NodeTestIr, StepIr};
    use xqa_frontend::ast::Axis;
    let leading_slash_slash = matches!(
        p.steps.first(),
        Some(StepIr::Axis {
            axis: Axis::DescendantOrSelf,
            test: NodeTestIr::AnyKind,
            predicates,
        }) if predicates.is_empty()
    );
    if !leading_slash_slash {
        return;
    }
    let fusable = matches!(
        p.steps.get(1),
        Some(StepIr::Axis {
            axis: Axis::Child,
            test: NodeTestIr::Name(_),
            predicates,
        }) if matches!(predicates.as_slice(), [pred] if match_value_eq_predicate(pred).is_some())
    );
    if !fusable {
        return;
    }
    let StepIr::Axis {
        test, predicates, ..
    } = p.steps.remove(1)
    else {
        unreachable!("matched an axis step above")
    };
    p.steps[0] = StepIr::Axis {
        axis: Axis::Descendant,
        test,
        predicates,
    };
}

/// Decide the access path for one compiled path, if an index shape
/// matches. Returns the annotation plus its rewrite-note text.
fn choose_access_path(
    p: &crate::ir::PathIr,
    mode: crate::AccessPathMode,
    stats: Option<&xqa_storage::CatalogStatistics>,
) -> Option<(crate::ir::AccessPathIr, String)> {
    use crate::ir::{AccessPathIr, NodeTestIr, StepIr};
    use crate::AccessPathMode;
    use xqa_frontend::ast::Axis;
    let StepIr::Axis {
        axis: Axis::Descendant,
        test: NodeTestIr::Name(name),
        predicates,
    } = p.steps.first()?
    else {
        return None;
    };
    match predicates.as_slice() {
        [] => {
            if mode == AccessPathMode::Auto {
                let stats = stats?;
                let selectivity = stats.descendant_selectivity(name);
                if selectivity > MAX_INDEX_SELECTIVITY {
                    return None;
                }
                return Some((
                    AccessPathIr::IndexDescendant,
                    format!(
                        "descendant scan //{name} resolved via label-range postings \
                         (selectivity {selectivity:.3})"
                    ),
                ));
            }
            Some((
                AccessPathIr::IndexDescendant,
                format!("descendant scan //{name} resolved via label-range postings (forced)"),
            ))
        }
        [pred] => {
            let (child, probe) = match_value_eq_predicate(pred)?;
            if mode == AccessPathMode::Auto {
                let stats = stats?;
                let numeric = matches!(probe, crate::ir::ValueProbeIr::Num(_));
                if !stats.value_eq_indexable(&child, numeric) {
                    return None;
                }
            }
            let desc = match &probe {
                crate::ir::ValueProbeIr::Str(s) => format!("//{name}[{child} = {s:?}]"),
                crate::ir::ValueProbeIr::Num(v) => format!("//{name}[{child} = {v}]"),
            };
            Some((
                AccessPathIr::IndexValueEq { child, probe },
                format!("value predicate {desc} resolved via typed-value index"),
            ))
        }
        _ => None,
    }
}

/// Match the predicate shape `child::c = literal` (either operand
/// order) under a general comparison. Returns the child name and the
/// probe literal. Anything else — other operators, paths with
/// predicates or extra steps, non-literal operands — declines, which is
/// also what keeps the predicate provably position-free.
fn match_value_eq_predicate(
    pred: &crate::ir::Ir,
) -> Option<(xqa_xdm::QName, crate::ir::ValueProbeIr)> {
    use crate::ir::{Ir, NodeTestIr, PathStartIr, StepIr, ValueProbeIr};
    use xqa_frontend::ast::Axis;
    use xqa_xdm::CompOp;
    let Ir::GeneralComp(CompOp::Eq, a, b) = pred else {
        return None;
    };
    let child_of = |side: &Ir| -> Option<xqa_xdm::QName> {
        let Ir::Path(p) = side else { return None };
        if !matches!(p.start, PathStartIr::Context) {
            return None;
        }
        let [StepIr::Axis {
            axis: Axis::Child,
            test: NodeTestIr::Name(c),
            predicates,
        }] = p.steps.as_slice()
        else {
            return None;
        };
        predicates.is_empty().then(|| c.clone())
    };
    let probe_of = |side: &Ir| -> Option<ValueProbeIr> {
        match side {
            Ir::Str(s) => Some(ValueProbeIr::Str(std::sync::Arc::clone(s))),
            // All numeric literals compare to untyped leaf values under
            // xs:double promotion, so one f64 probe covers them. NaN
            // never equals anything; declining keeps the walk's
            // comparison semantics authoritative.
            Ir::Int(v) => Some(ValueProbeIr::Num(*v as f64)),
            Ir::Dec(d) => Some(ValueProbeIr::Num(d.to_f64())),
            Ir::Dbl(v) => (!v.is_nan()).then_some(ValueProbeIr::Num(*v)),
            _ => None,
        }
    };
    let try_sides = |path_side: &Ir, lit_side: &Ir| -> Option<(xqa_xdm::QName, ValueProbeIr)> {
        Some((child_of(path_side)?, probe_of(lit_side)?))
    };
    try_sides(a, b).or_else(|| try_sides(b, a))
}

// ---- join unnesting ---------------------------------------------------

/// Detect joinable nested-FLWOR equality predicates and annotate them
/// for the pipeline's `HashJoin` operator. Two shapes match:
///
/// 1. **Let-join** — `let $m := (for $y in S where <eq> return $y)`
///    with no `at` / type / output-numbering decoration on the inner
///    FLWOR, binding `$m` to the matching build items.
/// 2. **Semi-join** — `where some $y in S satisfies <eq>`, a single
///    existential binding used as a filter.
///
/// In both, `<eq>` must be one `=` or `eq` comparison with exactly one
/// operand referencing `$y`; that side (the build key) may reference no
/// other slot the enclosing FLWOR binds, and the build source `S` must
/// be independent of every enclosing binding so it is sound to evaluate
/// once per FLWOR execution. `S` must also be free of node constructors
/// and user-function calls: the nested-loop plan constructs fresh nodes
/// per outer tuple, and sharing one materialization would change node
/// identity (constructors) or is too opaque to prove repeat-safe
/// (recursion). The probe side may be anything — it is (re)evaluated
/// per tuple either way.
///
/// The clause's original IR is left untouched; the annotation only
/// flips its plan operator, so `--join nested` and the runtime's
/// per-probe fallback scan still evaluate the exact original predicate.
///
/// Gate: `Nested` never annotates. `Auto` requires attached statistics
/// and declines a build side the planner estimates above
/// [`crate::MAX_HASH_BUILD_ROWS`] (unknown estimates are allowed — the
/// hash table is never larger than what the nested loop re-scans per
/// tuple). `Hash` annotates every matching shape.
pub fn detect_join_unnest(
    query: &mut crate::ir::CompiledQuery,
    mode: crate::JoinMode,
    stats: Option<&xqa_storage::CatalogStatistics>,
) -> Vec<String> {
    use crate::JoinMode;
    if mode == JoinMode::Nested {
        return Vec::new();
    }
    if mode == JoinMode::Auto && stats.is_none() {
        return Vec::new();
    }
    let mut fired = Vec::new();
    for g in &mut query.globals {
        let loc = format!("global ${}", g.name);
        detect_join_ir(&mut g.init, mode, stats, &loc, &mut fired);
    }
    for f in &mut query.functions {
        let loc = format!("function {}#{}", f.name, f.arity);
        detect_join_ir(&mut f.body, mode, stats, &loc, &mut fired);
    }
    detect_join_ir(&mut query.body, mode, stats, "query body", &mut fired);
    fired
}

fn detect_join_ir(
    ir: &mut crate::ir::Ir,
    mode: crate::JoinMode,
    stats: Option<&xqa_storage::CatalogStatistics>,
    loc: &str,
    fired: &mut Vec<String>,
) {
    if let crate::ir::Ir::Flwor(f) = ir {
        detect_join_flwor(f, mode, stats, loc, fired);
    }
    for child in crate::fold::child_irs(ir) {
        detect_join_ir(child, mode, stats, loc, fired);
    }
}

fn detect_join_flwor(
    f: &mut crate::ir::FlworIr,
    mode: crate::JoinMode,
    stats: Option<&xqa_storage::CatalogStatistics>,
    loc: &str,
    fired: &mut Vec<String>,
) {
    use crate::ir::PlanOpIr;
    let bound = flwor_bound_slots(f);
    let mut joins: Vec<Option<crate::ir::JoinIr>> = vec![None; f.clauses.len()];
    for (i, clause) in f.clauses.iter().enumerate() {
        let Some(join) = match_join_clause(clause, &bound, mode, stats) else {
            continue;
        };
        fired.push(format!(
            "hash join: {} unnested on {} (in {loc})",
            match join.kind {
                crate::ir::JoinKindIr::LetMany { slot, .. } => format!("let slot{slot} binding"),
                crate::ir::JoinKindIr::ExistsSemi => "existential filter".to_string(),
            },
            join.key_desc,
        ));
        f.plan[i] = PlanOpIr::HashJoin;
        joins[i] = Some(join);
    }
    if joins.iter().any(|j| j.is_some()) {
        f.joins = joins;
    }
}

/// Every slot the FLWOR's own clauses (or `return at`) bind — the set a
/// build side must be independent of.
fn flwor_bound_slots(f: &crate::ir::FlworIr) -> std::collections::HashSet<crate::ir::Slot> {
    use crate::ir::ClauseIr;
    let mut bound = std::collections::HashSet::new();
    for clause in &f.clauses {
        match clause {
            ClauseIr::For { slot, at_slot, .. } => {
                bound.insert(*slot);
                bound.extend(at_slot.iter().copied());
            }
            ClauseIr::Let { slot, .. } | ClauseIr::Count { slot } => {
                bound.insert(*slot);
            }
            ClauseIr::Window(w) => {
                bound.insert(w.slot);
                for cond in std::iter::once(&w.start).chain(w.end.iter()) {
                    for s in [
                        cond.item_slot,
                        cond.at_slot,
                        cond.previous_slot,
                        cond.next_slot,
                    ] {
                        bound.extend(s);
                    }
                }
            }
            ClauseIr::GroupBy(g) => {
                bound.extend(g.keys.iter().map(|k| k.slot));
                bound.extend(g.nests.iter().map(|n| n.slot));
            }
            ClauseIr::OrderBy(_) | ClauseIr::Where(_) => {}
        }
    }
    bound.extend(f.return_at.iter().copied());
    bound
}

fn match_join_clause(
    clause: &crate::ir::ClauseIr,
    bound: &std::collections::HashSet<crate::ir::Slot>,
    mode: crate::JoinMode,
    stats: Option<&xqa_storage::CatalogStatistics>,
) -> Option<crate::ir::JoinIr> {
    use crate::ir::{ClauseIr, Ir, JoinKindIr};
    use xqa_frontend::ast::Quantifier;
    let (kind, y, src, pred) = match clause {
        // Pattern 1: let $m := (for $y in S where <eq> return $y).
        ClauseIr::Let { slot, ty, expr } => {
            let Ir::Flwor(inner) = expr else { return None };
            if inner.return_at.is_some() {
                return None;
            }
            let [ClauseIr::For {
                slot: y,
                at_slot: None,
                ty: None,
                expr: src,
            }, ClauseIr::Where(pred)] = inner.clauses.as_slice()
            else {
                return None;
            };
            if !matches!(&inner.return_expr, Ir::Var(v) if v == y) {
                return None;
            }
            let kind = JoinKindIr::LetMany {
                slot: *slot,
                ty: ty.clone(),
            };
            (kind, *y, src, pred)
        }
        // Pattern 2: where some $y in S satisfies <eq>.
        ClauseIr::Where(Ir::Quantified {
            kind: Quantifier::Some,
            bindings,
            satisfies,
        }) => {
            let [(y, src)] = bindings.as_slice() else {
                return None;
            };
            (JoinKindIr::ExistsSemi, *y, src, satisfies.as_ref())
        }
        _ => return None,
    };
    if !rebuild_safe(src) || refs_any_slot(src, bound) {
        return None;
    }
    let (build_key, probe_key, probe_is_lhs, value_comp) = split_eq_pred(pred, y, bound)?;
    if mode == crate::JoinMode::Auto {
        if let Some(est) = crate::estimate::source_cardinality(src, stats) {
            if est > crate::MAX_HASH_BUILD_ROWS {
                return None;
            }
        }
    }
    let op = if value_comp { "eq" } else { "=" };
    let key_desc = format!(
        "key={} {op} {}",
        expr_oneline(probe_key),
        expr_oneline(build_key)
    );
    Some(crate::ir::JoinIr {
        kind,
        build_slot: y,
        build_src: src.clone(),
        pred: pred.clone(),
        build_key: build_key.clone(),
        probe_key: probe_key.clone(),
        probe_is_lhs,
        value_comp,
        key_desc,
    })
}

/// Split a single `=` / `eq` comparison into (build side referencing
/// `$y` and nothing else the enclosing FLWOR binds, probe side not
/// referencing `$y`). Conjunctions and every other operator decline.
fn split_eq_pred<'a>(
    pred: &'a crate::ir::Ir,
    y: crate::ir::Slot,
    bound: &std::collections::HashSet<crate::ir::Slot>,
) -> Option<(&'a crate::ir::Ir, &'a crate::ir::Ir, bool, bool)> {
    use crate::ir::Ir;
    use xqa_xdm::CompOp;
    let (a, b, value_comp) = match pred {
        Ir::GeneralComp(CompOp::Eq, a, b) => (a.as_ref(), b.as_ref(), false),
        Ir::ValueComp(CompOp::Eq, a, b) => (a.as_ref(), b.as_ref(), true),
        _ => return None,
    };
    let y_only = std::collections::HashSet::from([y]);
    let (build, probe, probe_is_lhs) = match (refs_any_slot(a, &y_only), refs_any_slot(b, &y_only))
    {
        (true, false) => (a, b, false),
        (false, true) => (b, a, true),
        _ => return None,
    };
    if refs_any_slot(build, bound) {
        return None;
    }
    Some((build, probe, probe_is_lhs, value_comp))
}

/// Does the expression reference any of the given frame slots? Slot
/// numbers are globally unique per compiled query (no shadowing), so a
/// plain `Var` scan over the whole subtree is exact.
fn refs_any_slot(ir: &crate::ir::Ir, slots: &std::collections::HashSet<crate::ir::Slot>) -> bool {
    if let crate::ir::Ir::Var(s) = ir {
        if slots.contains(s) {
            return true;
        }
    }
    crate::fold::child_irs_ref(ir)
        .into_iter()
        .any(|child| refs_any_slot(child, slots))
}

/// May the expression be evaluated once and its result shared across
/// outer tuples? Node constructors mint fresh node identities per
/// evaluation, and user-function bodies are not inspected — both
/// decline. Everything else in the IR is pure and deterministic.
fn rebuild_safe(ir: &crate::ir::Ir) -> bool {
    use crate::ir::Ir;
    if matches!(
        ir,
        Ir::Element(_)
            | Ir::Attribute { .. }
            | Ir::Text(_)
            | Ir::Comment(_)
            | Ir::Pi(..)
            | Ir::CallUser(..)
    ) {
        return false;
    }
    crate::fold::child_irs_ref(ir).into_iter().all(rebuild_safe)
}

/// A compact one-line rendering of a join key expression for rewrite
/// notes and the `[hash join key=…]` explain tag.
fn expr_oneline(ir: &crate::ir::Ir) -> String {
    use crate::ir::{Ir, NodeTestIr, PathStartIr, StepIr};
    match ir {
        Ir::Var(s) => format!("$slot{s}"),
        Ir::Global(g) => format!("$global{g}"),
        Ir::ContextItem => ".".to_string(),
        Ir::Str(s) => format!("{s:?}"),
        Ir::Int(v) => v.to_string(),
        Ir::Dec(d) => d.to_string(),
        Ir::Dbl(v) => v.to_string(),
        Ir::Path(p) => {
            let mut out = match &p.start {
                PathStartIr::Context => String::new(),
                PathStartIr::Root => "/".to_string(),
                PathStartIr::Expr(e) => expr_oneline(e),
            };
            for step in &p.steps {
                if !out.is_empty() && !out.ends_with('/') {
                    out.push('/');
                }
                match step {
                    StepIr::Axis {
                        test: NodeTestIr::Name(q),
                        ..
                    } => out.push_str(&q.to_string()),
                    _ => out.push_str("step()"),
                }
            }
            out
        }
        _ => "expr()".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_frontend::parse_query;

    fn rewrite(src: &str) -> (Module, Vec<String>) {
        let mut m = parse_query(src).expect("parse");
        let fired = detect_implicit_groupby(&mut m);
        (m, fired)
    }

    const Q_ONE_KEY: &str = r#"
        for $a in distinct-values(//order/lineitem/shipmode)
        let $items := for $i in //order/lineitem where $i/shipmode = $a return $i
        return <r>{$a, count($items)}</r>"#;

    const Q_TWO_KEY: &str = r#"
        for $a in distinct-values(//order/lineitem/shipinstruct),
            $b in distinct-values(//order/lineitem/shipmode)
        let $items := for $i in //order/lineitem
                      where $i/shipinstruct = $a and $i/shipmode = $b
                      return $i
        where exists($items)
        return <r>{$a, $b, count($items)}</r>"#;

    #[test]
    fn one_key_template_detected() {
        let (m, fired) = rewrite(Q_ONE_KEY);
        assert_eq!(fired.len(), 1, "{fired:?}");
        let ExprKind::Flwor(f) = &m.body.kind else {
            panic!("not a flwor")
        };
        let g = f.group_by.as_ref().expect("group by synthesized");
        assert_eq!(g.keys.len(), 1);
        assert_eq!(g.keys[0].var, "a");
        assert_eq!(g.nests.len(), 1);
        assert_eq!(g.nests[0].var, "items");
        assert!(f.where_clause.is_none());
    }

    #[test]
    fn two_key_template_detected() {
        let (m, fired) = rewrite(Q_TWO_KEY);
        assert_eq!(fired.len(), 1, "{fired:?}");
        let ExprKind::Flwor(f) = &m.body.kind else {
            panic!("not a flwor")
        };
        let g = f.group_by.as_ref().expect("group by synthesized");
        assert_eq!(g.keys.len(), 2);
        assert_eq!(g.keys[0].var, "a");
        assert_eq!(g.keys[1].var, "b");
    }

    #[test]
    fn reversed_equality_operands_still_match() {
        let (_, fired) = rewrite(
            r#"for $a in distinct-values(//x/k)
               let $items := for $i in //x where $a = $i/k return $i
               return count($items)"#,
        );
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn different_scan_paths_do_not_match() {
        let (_, fired) = rewrite(
            r#"for $a in distinct-values(//x/k)
               let $items := for $i in //y where $i/k = $a return $i
               return count($items)"#,
        );
        assert!(fired.is_empty());
    }

    #[test]
    fn extra_predicate_defeats_detection() {
        // The paper's point: omit or add any construct and the simple
        // pattern no longer matches.
        let (_, fired) = rewrite(
            r#"for $a in distinct-values(//x/k)
               let $items := for $i in //x where $i/k = $a and $i/z = 1 return $i
               return count($items)"#,
        );
        assert!(fired.is_empty());
    }

    #[test]
    fn unrelated_where_defeats_detection() {
        let (_, fired) = rewrite(
            r#"for $a in distinct-values(//x/k)
               let $items := for $i in //x where $i/k = $a return $i
               where count($items) > 1
               return count($items)"#,
        );
        assert!(fired.is_empty());
    }

    #[test]
    fn nested_flwor_bodies_are_rewritten() {
        let src = format!("for $d in (1,2) return {}", Q_ONE_KEY.trim());
        let (_, fired) = rewrite(&src);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn explicit_group_by_left_alone() {
        let (_, fired) = rewrite(
            "for $b in //book group by $b/publisher into $p nest $b into $bs return count($bs)",
        );
        assert!(fired.is_empty());
    }
}
