//! Focused coverage of axis/node-test combinations and positional
//! semantics, including reverse axes and non-element node kinds.

use xqa_engine::{DynamicContext, Engine};
use xqa_xmlparse::{parse_document, serialize_sequence};

const DOC: &str = r#"<library>
  <shelf id="s1">
    <!--fiction-->
    <book id="b1"><title>A</title><?note keep?></book>
    <book id="b2"><title>B</title></book>
    <book id="b3"><title>C</title></book>
  </shelf>
  <shelf id="s2">
    <book id="b4"><title>D</title></book>
  </shelf>
</library>"#;

fn run(query: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile {query:?}: {e}"));
    let doc = parse_document(DOC).expect("well-formed");
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    serialize_sequence(
        &compiled
            .run(&ctx)
            .unwrap_or_else(|e| panic!("run {query:?}: {e}")),
    )
}

#[test]
fn reverse_axis_positions_count_from_near_end() {
    // preceding-sibling::book[1] is the *nearest* preceding book.
    assert_eq!(
        run("string(//book[@id = \"b3\"]/preceding-sibling::book[1]/@id)"),
        "b2"
    );
    assert_eq!(
        run("string(//book[@id = \"b3\"]/preceding-sibling::book[2]/@id)"),
        "b1"
    );
    // ancestor::*[1] is the parent.
    assert_eq!(run("string((//title)[1]/ancestor::*[1]/@id)"), "b1");
    assert_eq!(run("name((//title)[1]/ancestor::*[2])"), "shelf");
}

#[test]
fn following_sibling_positions_count_forward() {
    assert_eq!(
        run("string(//book[@id = \"b1\"]/following-sibling::book[1]/@id)"),
        "b2"
    );
    assert_eq!(run("count(//book[@id = \"b1\"]/following-sibling::*)"), "2");
}

#[test]
fn comment_and_pi_kind_tests() {
    assert_eq!(run("string(//shelf[1]/comment())"), "fiction");
    assert_eq!(run("count(//comment())"), "1");
    assert_eq!(run("string(//book[1]/processing-instruction())"), "keep");
    assert_eq!(run("count(//processing-instruction(note))"), "1");
    assert_eq!(run("count(//processing-instruction(other))"), "0");
}

#[test]
fn text_kind_test_and_wildcards() {
    assert_eq!(run("string((//title/text())[1])"), "A");
    assert_eq!(run("count(//book/@*)"), "4");
    assert_eq!(
        run("count(//shelf/*)"),
        "4",
        "elements only; comment excluded"
    );
    assert_eq!(
        run("count(//shelf/node())"),
        "5",
        "node() includes the comment"
    );
}

#[test]
fn element_and_attribute_tests_with_names() {
    assert_eq!(run("count(//element(book))"), "4");
    assert_eq!(run("count(//shelf[1]/element())"), "3");
    assert_eq!(run("count(//book/attribute(id))"), "4");
    assert_eq!(
        run("count(/document-node())"),
        "0",
        "document node has no document child"
    );
    assert_eq!(run("count(//book[@id eq \"b2\"])"), "1");
}

#[test]
fn ancestor_or_self_and_self_tests() {
    // title + book + shelf + library (self is an element too)
    assert_eq!(run("count((//title)[1]/ancestor-or-self::*)"), "4");
    assert_eq!(run("name((//title)[1]/ancestor-or-self::*[3])"), "shelf");
    assert_eq!(run("name((//title)[1]/ancestor-or-self::*[4])"), "library");
    assert_eq!(run("count(//book/self::shelf)"), "0");
}

#[test]
fn descendant_vs_descendant_or_self() {
    assert_eq!(
        run("count(//shelf[1]/descendant::*)"),
        "6",
        "3 books + 3 titles"
    );
    assert_eq!(run("count(//shelf[1]/descendant-or-self::*)"), "7");
}

#[test]
fn union_across_axes_in_document_order() {
    let out = run("for $n in (//book[@id = \"b2\"]/following-sibling::book \
                    | //book[@id = \"b2\"]/preceding-sibling::book) \
         return string($n/@id)");
    assert_eq!(out, "b1 b3");
}

#[test]
fn positional_predicates_on_expression_steps() {
    // Filter applies per context item on expression steps.
    assert_eq!(run("//shelf/(book/title)[1]/string()"), "A D");
    // vs. filtering the whole result
    assert_eq!(run("string((//shelf/book/title)[1])"), "A");
}

#[test]
fn last_in_reverse_axis_predicates() {
    // last() inside a reverse-axis predicate: the farthest node.
    assert_eq!(
        run("string(//book[@id = \"b3\"]/preceding-sibling::book[last()]/@id)"),
        "b1"
    );
}

#[test]
fn parent_of_attribute_is_owner_element() {
    assert_eq!(run("name((//@id)[2]/..)"), "book");
    assert_eq!(run("count(//@id/ancestor::library)"), "1");
}

#[test]
fn path_over_constructed_trees() {
    // Paths navigate freshly constructed nodes too.
    assert_eq!(
        run("let $t := <a><b><c>1</c></b><b><c>2</c></b></a> \
             return sum($t/b/c)"),
        "3"
    );
    assert_eq!(run("let $t := <a><b/><b/></a> return count($t//b)"), "2");
    assert_eq!(run("let $t := <a x=\"9\"/> return string($t/@x)"), "9");
}
