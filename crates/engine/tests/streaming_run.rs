//! Contract tests for the streaming execution path
//! (`PreparedQuery::run_streaming` / `run_serialized`): concatenated
//! streamed output must be byte-identical to the materialized run, the
//! pipeline must actually emit in multiple batches, and failures must
//! classify as before-first-item vs mid-stream vs sink.

use xqa_engine::{DynamicContext, Engine, EngineOptions, StreamError};
use xqa_xdm::{ErrorCode, Item};
use xqa_xmlparse::{parse_document, serialize_sequence, SequenceSerializer, SerializeOptions};

const BIB: &str = r#"
<bib>
  <book><title>A</title><publisher>MK</publisher><year>1993</year><price>65</price></book>
  <book><title>B</title><publisher>MK</publisher><year>1995</year><price>34</price></book>
  <book><title>C</title><publisher>AW</publisher><year>1993</year><price>48</price></book>
  <book><title>D</title><publisher>MK</publisher><year>1993</year><price>43</price></book>
</bib>"#;

fn ctx_for(xml: &str) -> DynamicContext {
    let doc = parse_document(xml).expect("well-formed test document");
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    ctx
}

/// Queries covering the serialization-sensitive shapes: adjacent
/// atomics, node constructors, mixed node/atomic output, grouping,
/// ordering with rank, and an empty result.
const CORPUS: &[&str] = &[
    "for $x in 1 to 10 return $x",
    "for $x in 1 to 10 return <n>{$x}</n>",
    "for $x in 1 to 5 return ($x, <sep/>, $x * 2)",
    "for $b in //book where $b/year = 1993 return $b/title",
    "for $b in //book \
       group by $b/publisher into $p \
       nest $b/price into $prices \
       order by $p \
       return <g p=\"{$p}\">{sum($prices)}</g>",
    "for $b in //book order by $b/price descending return at $r <r n=\"{$r}\">{$b/title}</r>",
    "for $b in //book where $b/year = 1800 return $b",
    "count(//book)",
    "(1, 2, 3)[. gt 5]",
];

#[test]
fn streamed_items_match_materialized_run() {
    let engine = Engine::new();
    for query in CORPUS {
        let plan = engine.compile(query).expect("compile");
        let ctx = ctx_for(BIB);
        let expected = plan.run(&ctx).expect("buffered run");
        let mut streamed: Vec<Item> = Vec::new();
        let n = plan
            .run_streaming(&ctx, &mut |items| {
                streamed.extend_from_slice(items);
                Ok(())
            })
            .expect("streaming run");
        assert_eq!(n as usize, expected.len(), "item count for {query:?}");
        assert_eq!(
            serialize_sequence(&streamed),
            serialize_sequence(&expected),
            "streamed bytes diverged for {query:?}"
        );
    }
}

#[test]
fn serialized_chunks_match_one_shot_serialization() {
    let engine = Engine::new();
    for query in CORPUS {
        let plan = engine.compile(query).expect("compile");
        let ctx = ctx_for(BIB);
        let expected = serialize_sequence(&plan.run(&ctx).expect("buffered run"));
        let mut out = String::new();
        let stats = plan
            .run_serialized(&ctx, &mut |chunk| {
                out.push_str(chunk);
                Ok(())
            })
            .expect("serialized streaming run");
        assert_eq!(out, expected, "chunked bytes diverged for {query:?}");
        assert_eq!(stats.bytes as usize, out.len());
    }
}

#[test]
fn large_results_stream_in_multiple_batches() {
    let engine = Engine::new();
    let plan = engine.compile("for $x in 1 to 1000 return $x").unwrap();
    let ctx = DynamicContext::new();
    let mut batches = 0usize;
    let mut total = 0usize;
    plan.run_streaming(&ctx, &mut |items| {
        batches += 1;
        total += items.len();
        Ok(())
    })
    .expect("streaming run");
    assert_eq!(total, 1000);
    assert!(
        batches > 1,
        "expected batched emission, got {batches} batch"
    );
}

#[test]
fn parallel_path_streams_identical_bytes() {
    let engine = Engine::with_options(EngineOptions {
        threads: 4,
        ..EngineOptions::default()
    });
    // > MORSEL items so the morsel-parallel executor engages.
    let query = "for $x in 1 to 5000 where $x mod 7 = 0 return <n>{$x}</n>";
    let plan = engine.compile(query).unwrap();
    let ctx = DynamicContext::new();
    let expected = serialize_sequence(&plan.run(&ctx).unwrap());
    let mut ser = SequenceSerializer::new(SerializeOptions::default());
    let mut out = String::new();
    plan.run_streaming(&ctx, &mut |items| {
        ser.push(items, &mut out);
        Ok(())
    })
    .expect("parallel streaming run");
    assert_eq!(out, expected);
}

#[test]
fn error_before_first_item_classifies_as_before_first() {
    let engine = Engine::new();
    let plan = engine.compile("1 div 0").unwrap();
    let ctx = DynamicContext::new();
    let err = plan
        .run_streaming(&ctx, &mut |_| Ok(()))
        .expect_err("division by zero must fail");
    match err {
        StreamError::BeforeFirstItem(e) => assert_eq!(e.code(), ErrorCode::FOAR0001),
        other => panic!("expected BeforeFirstItem, got {other:?}"),
    }
}

#[test]
fn error_after_emission_classifies_as_mid_stream() {
    let engine = Engine::new();
    // Fails at $x = 150: two full 64-item batches (128 items) emit first.
    let plan = engine
        .compile("for $x in 1 to 200 return 1 div (150 - $x)")
        .unwrap();
    let ctx = DynamicContext::new();
    let mut emitted = 0u64;
    let err = plan
        .run_streaming(&ctx, &mut |items| {
            emitted += items.len() as u64;
            Ok(())
        })
        .expect_err("mid-stream division by zero must fail");
    match err {
        StreamError::MidStream {
            error,
            items_emitted,
        } => {
            assert_eq!(error.code(), ErrorCode::FOAR0001);
            assert_eq!(items_emitted, emitted);
            assert_eq!(items_emitted, 128);
        }
        other => panic!("expected MidStream, got {other:?}"),
    }
}

#[test]
fn sink_failure_classifies_as_sink_error() {
    let engine = Engine::new();
    let plan = engine.compile("for $x in 1 to 1000 return $x").unwrap();
    let ctx = DynamicContext::new();
    let mut calls = 0usize;
    let err = plan
        .run_streaming(&ctx, &mut |_| {
            calls += 1;
            if calls > 1 {
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client hung up",
                ))
            } else {
                Ok(())
            }
        })
        .expect_err("sink failure must surface");
    match err {
        StreamError::Sink {
            error,
            items_emitted,
        } => {
            assert_eq!(error.kind(), std::io::ErrorKind::BrokenPipe);
            assert_eq!(items_emitted, 64);
        }
        other => panic!("expected Sink, got {other:?}"),
    }
}

#[test]
fn streaming_run_reports_stats_like_buffered() {
    let engine = Engine::new();
    let query = "for $b in //book group by $b/publisher into $p return $p";
    let plan = engine.compile(query).unwrap();

    let buffered_ctx = ctx_for(BIB);
    plan.run(&buffered_ctx).unwrap();
    let buffered = buffered_ctx.stats.snapshot();

    let streamed_ctx = ctx_for(BIB);
    plan.run_streaming(&streamed_ctx, &mut |_| Ok(())).unwrap();
    let streamed = streamed_ctx.stats.snapshot();

    assert_eq!(streamed.tuples_grouped, buffered.tuples_grouped);
    assert!(streamed.tuples_grouped > 0);
}
