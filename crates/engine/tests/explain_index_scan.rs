//! Golden tests for the `[index scan ...]` plan annotations.
//!
//! `explain` output is deterministic by construction; the `explain
//! analyze` golden additionally pins timings with the [`TickClock`].
//! Regenerate with `UPDATE_GOLDEN=1 cargo test`.

use std::sync::Arc;

use xqa_engine::{AccessPathMode, DynamicContext, Engine, EngineOptions, TickClock};
use xqa_storage::CatalogStatistics;

/// 1ms per clock read, matching the other explain-analyze goldens.
const TICK_NANOS: u64 = 1_000_000;

/// Six `item` elements (of 19 elements total, selectivity well under
/// the auto-mode gate), each with a numeric `p` leaf.
const DOC: &str = "<r>\
     <item><p>1</p></item><item><p>2</p></item><item><p>3</p></item>\
     <item><p>1</p></item><item><p>2</p></item><item><p>3</p></item>\
     <pad/><pad/><pad/><pad/><pad/><pad/>\
     </r>";

fn indexed_ctx() -> (DynamicContext, Arc<CatalogStatistics>) {
    let doc = xqa_xmlparse::parse_document(DOC).expect("parse");
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    ctx.index_documents();
    let stats = Arc::new(CatalogStatistics::from_stores(
        ctx.stores().map(Arc::as_ref),
    ));
    (ctx, stats)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\nrun with UPDATE_GOLDEN=1 to (re)create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "output drifted from golden {name}\nrun with UPDATE_GOLDEN=1 to regenerate"
    );
}

#[test]
fn explain_renders_index_scan_annotations() {
    let (_, stats) = indexed_ctx();
    let engine = Engine::new().with_statistics(stats);
    let plan = engine
        .compile("count(//item) + count(//item[p = 2]) + count(//pad/missing)")
        .expect("compile");
    let text = plan.explain();
    assert_matches_golden("explain_index_scan.txt", &text);
    // All three leading descendant steps are annotated — //pad/missing
    // resolves the //pad prefix via the index, then walks the child step.
    assert_eq!(text.matches("[index scan").count(), 3, "{text}");
    assert!(text.contains("[index scan path=//item]"), "{text}");
    assert!(text.contains("[index scan path=//pad]"), "{text}");
    assert!(
        text.contains("[index scan path=//item value-eq p=2]"),
        "{text}"
    );
}

#[test]
fn explain_walk_mode_has_no_annotations() {
    let (_, stats) = indexed_ctx();
    let engine = Engine::with_options(EngineOptions {
        access_path: AccessPathMode::Walk,
        ..Default::default()
    })
    .with_statistics(stats);
    let plan = engine.compile("count(//item[p = 2])").expect("compile");
    assert!(
        !plan.explain().contains("[index scan"),
        "{}",
        plan.explain()
    );
}

#[test]
fn explain_analyze_reports_index_scan_counters() {
    let (mut ctx, stats) = indexed_ctx();
    let engine = Engine::new().with_statistics(stats);
    let plan = engine
        .compile(
            "for $i in //item[p = 2] \
             order by string($i/p) \
             return at $r <hit rank=\"{$r}\"/>",
        )
        .expect("compile");
    ctx.set_clock(Arc::new(TickClock::new(TICK_NANOS)));
    ctx.enable_profiling();
    plan.run(&ctx).expect("run");
    let profile = ctx.take_profile().expect("profiling was enabled");
    let text = plan.explain_analyze(&profile);
    assert_matches_golden("explain_analyze_index_scan.txt", &text);
    // The ForScan advertises its access path and the footer counts the
    // index-resolved tuples.
    assert!(text.contains("ForScan(index scan //item[p=..])"), "{text}");
    assert!(
        text.contains("index scans: hits=1 index_tuples=2 walk_tuples=0"),
        "{text}"
    );
    // The statistics-driven estimate rides along: 6 `item` elements
    // over 3 distinct `p` values, value-eq probe estimated at
    // 6/ndv(p) = 2 — exactly the 2 matches.
    assert!(text.contains("est/actual=2/2 (q=1.0)"), "{text}");
    assert!(text.contains("worst misestimate:"), "{text}");
}

/// Twelve `item` elements but only two distinct `p` values: the
/// catalog ndv drives the value-eq estimate to 12/2 = 6, where the
/// old ⌈√12⌉ = 3 fallback would have been off by 2×.
const SKEW_DOC: &str = "<r>\
     <item><p>1</p></item><item><p>2</p></item><item><p>1</p></item>\
     <item><p>2</p></item><item><p>1</p></item><item><p>2</p></item>\
     <item><p>1</p></item><item><p>2</p></item><item><p>1</p></item>\
     <item><p>2</p></item><item><p>1</p></item><item><p>2</p></item>\
     <pad/><pad/><pad/><pad/><pad/><pad/>\
     <pad/><pad/><pad/><pad/><pad/><pad/>\
     </r>";

#[test]
fn explain_analyze_value_eq_estimate_uses_catalog_ndv() {
    let doc = xqa_xmlparse::parse_document(SKEW_DOC).expect("parse");
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    ctx.index_documents();
    let stats = Arc::new(CatalogStatistics::from_stores(
        ctx.stores().map(Arc::as_ref),
    ));
    let engine = Engine::new().with_statistics(stats);
    let plan = engine
        .compile("for $i in //item[p = 1] return string($i/p)")
        .expect("compile");
    ctx.set_clock(Arc::new(TickClock::new(TICK_NANOS)));
    ctx.enable_profiling();
    plan.run(&ctx).expect("run");
    let profile = ctx.take_profile().expect("profiling was enabled");
    let text = plan.explain_analyze(&profile);
    assert_matches_golden("explain_analyze_value_eq_ndv.txt", &text);
    assert!(text.contains("est/actual=6/6 (q=1.0)"), "{text}");
}
