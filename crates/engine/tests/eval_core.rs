//! End-to-end evaluation tests: core language (no grouping).

use xqa_engine::{DynamicContext, Engine};
use xqa_xdm::ErrorCode;
use xqa_xmlparse::{parse_document, serialize_sequence};

/// Run a query against an XML document, serializing the result.
fn run_xml(query: &str, xml: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile {query:?}: {e}"));
    let doc = parse_document(xml).expect("well-formed test document");
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run {query:?}: {e}"));
    serialize_sequence(&result)
}

/// Run a query with no input document.
fn run(query: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile {query:?}: {e}"));
    let ctx = DynamicContext::new();
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run {query:?}: {e}"));
    serialize_sequence(&result)
}

/// Expect a dynamic or static error and return its code.
fn run_err(query: &str) -> ErrorCode {
    let engine = Engine::new();
    match engine.compile(query) {
        Err(e) => e.code(),
        Ok(q) => {
            let ctx = DynamicContext::new();
            match q.run(&ctx) {
                Err(e) => e.code(),
                Ok(v) => panic!("expected error for {query:?}, got {v:?}"),
            }
        }
    }
}

const BIB: &str = r#"
<bib>
  <book>
    <title>Transaction Processing</title>
    <author>Jim Gray</author>
    <author>Andreas Reuter</author>
    <publisher>Morgan Kaufmann</publisher>
    <year>1993</year>
    <price>65.00</price>
    <discount>5.50</discount>
  </book>
  <book>
    <title>Understanding the New SQL</title>
    <author>Jim Melton</author>
    <publisher>Morgan Kaufmann</publisher>
    <year>1993</year>
    <price>54.95</price>
  </book>
  <book>
    <title>Understanding SQL and Java Together</title>
    <author>Jim Melton</author>
    <year>2000</year>
    <price>49.95</price>
  </book>
</bib>"#;

#[test]
fn arithmetic_tower() {
    assert_eq!(run("1 + 2"), "3");
    assert_eq!(run("1 + 2.5"), "3.5");
    assert_eq!(run("1 + 2.5e0"), "3.5");
    assert_eq!(run("10 div 4"), "2.5");
    assert_eq!(run("10 idiv 4"), "2");
    assert_eq!(run("10 mod 4"), "2");
    assert_eq!(run("-(3 - 5)"), "2");
    assert_eq!(run("2 * 3 + 4"), "10");
    assert_eq!(run("65.00 - 5.50"), "59.5");
    assert_eq!(run("() + 1"), "");
    assert_eq!(run_err("1 div 0"), ErrorCode::FOAR0001);
    assert_eq!(run("1 div 0e0"), "INF");
    assert_eq!(run_err("9223372036854775807 + 1"), ErrorCode::FOAR0002);
}

#[test]
fn sequences_and_ranges() {
    assert_eq!(run("(1, 2, 3)"), "1 2 3");
    assert_eq!(run("1 to 4"), "1 2 3 4");
    assert_eq!(run("4 to 1"), "");
    assert_eq!(run("((1,2), (), (3))"), "1 2 3");
    assert_eq!(run("count(1 to 100)"), "100");
}

#[test]
fn comparisons_general_vs_value() {
    assert_eq!(run("(1, 2) = (2, 3)"), "true");
    assert_eq!(run("(1, 2) != (1, 2)"), "true"); // existential quirk
    assert_eq!(run("1 eq 1"), "true");
    assert_eq!(run(r#""abc" lt "abd""#), "true");
    assert_eq!(run("() = 1"), "false");
    assert_eq!(run("() eq 1"), "");
    assert_eq!(run_err(r#"(1,2) eq 1"#), ErrorCode::XPTY0004);
}

#[test]
fn logic_and_conditionals() {
    assert_eq!(run("true() and false()"), "false");
    assert_eq!(run("true() or false()"), "true");
    assert_eq!(run("if (1 < 2) then \"yes\" else \"no\""), "yes");
    assert_eq!(run("not(())"), "true");
    // short circuit: rhs would error
    assert_eq!(run("false() and (1 div 0 = 1)"), "false");
    assert_eq!(run("true() or (1 div 0 = 1)"), "true");
}

#[test]
fn quantified_expressions() {
    assert_eq!(run("some $x in (1, 2, 3) satisfies $x = 2"), "true");
    assert_eq!(run("every $x in (1, 2, 3) satisfies $x < 4"), "true");
    assert_eq!(run("every $x in (1, 2, 3) satisfies $x < 3"), "false");
    assert_eq!(run("some $x in () satisfies true()"), "false");
    assert_eq!(run("every $x in () satisfies false()"), "true");
    assert_eq!(
        run("some $x in (1,2), $y in (2,3) satisfies $x = $y"),
        "true"
    );
}

#[test]
fn paths_and_predicates() {
    assert_eq!(run_xml("count(//book)", BIB), "3");
    assert_eq!(run_xml("count(//author)", BIB), "4");
    assert_eq!(
        run_xml("string(//book[1]/title)", BIB),
        "Transaction Processing"
    );
    assert_eq!(
        run_xml("string(//book[3]/title)", BIB),
        "Understanding SQL and Java Together"
    );
    assert_eq!(run_xml("count(//book[publisher])", BIB), "2");
    assert_eq!(
        run_xml(r#"string(//book[author = "Jim Gray"]/price)"#, BIB),
        "65.00"
    );
    assert_eq!(run_xml("count(//book[price > 50])", BIB), "2");
    assert_eq!(run_xml("count(/bib/book)", BIB), "3");
    assert_eq!(run_xml("count(/book)", BIB), "0");
}

#[test]
fn path_atomization_and_arithmetic_steps() {
    // Parenthesized arithmetic step from Q3
    // Only book 1 has a discount; for the others `price - discount`
    // is empty (arithmetic with an empty operand yields empty).
    assert_eq!(run_xml("sum(//book/(price - discount))", BIB), "59.5");
    // function call step
    assert_eq!(run_xml("//book/string-length(title)", BIB), "22 25 35");
}

#[test]
fn axes() {
    assert_eq!(
        run_xml("string((//author)[1]/..//title)", BIB),
        "Transaction Processing"
    );
    assert_eq!(run_xml("count(//book/child::*)", BIB), "16");
    assert_eq!(
        run_xml("count(//title/following-sibling::author)", BIB),
        "4"
    );
    assert_eq!(run_xml("count(//price/preceding-sibling::title)", BIB), "3");
    assert_eq!(run_xml("count(//author/ancestor::bib)", BIB), "1");
    assert_eq!(run_xml("count(//book/self::book)", BIB), "3");
    assert_eq!(
        run_xml("count(//book/descendant-or-self::node())", BIB),
        "35"
    );
}

#[test]
fn attributes_axis() {
    let xml = r#"<sales><sale id="s1" region="West"/><sale id="s2" region="East"/></sales>"#;
    assert_eq!(run_xml("string(//sale[1]/@region)", xml), "West");
    assert_eq!(run_xml("count(//sale/@*)", xml), "4");
    assert_eq!(run_xml(r#"count(//sale[@region = "East"])"#, xml), "1");
    assert_eq!(run_xml("string(//sale[2]/attribute::id)", xml), "s2");
}

#[test]
fn document_order_and_dedup() {
    // Union dedups and sorts in document order.
    assert_eq!(run_xml("count(//book[1] | //book | //book[2])", BIB), "3");
    let titles = run_xml(
        "for $t in (//book[2]/title | //book[1]/title) return string($t)",
        BIB,
    );
    assert_eq!(titles, "Transaction Processing Understanding the New SQL");
    assert_eq!(run_xml("count(//book intersect //book[2])", BIB), "1");
    assert_eq!(run_xml("count(//book except //book[2])", BIB), "2");
}

#[test]
fn node_comparisons() {
    assert_eq!(run_xml("//book[1] is //book[1]", BIB), "true");
    assert_eq!(run_xml("//book[1] is //book[2]", BIB), "false");
    assert_eq!(run_xml("//book[1] << //book[2]", BIB), "true");
    assert_eq!(run_xml("//book[2] >> //book[1]", BIB), "true");
    assert_eq!(run_xml("() is //book[1]", BIB), "");
    // constructed copies have fresh identities
    assert_eq!(run("let $a := <x/> return $a is $a"), "true");
    assert_eq!(run("<x/> is <x/>"), "false");
}

#[test]
fn flwor_basics() {
    assert_eq!(run("for $x in (1, 2, 3) return $x * 10"), "10 20 30");
    assert_eq!(run("for $x in (1, 2, 3) where $x > 1 return $x"), "2 3");
    assert_eq!(
        run("for $x at $i in (\"a\", \"b\") return ($i, $x)"),
        "1 a 2 b"
    );
    assert_eq!(run("let $x := (1, 2) return count($x)"), "2");
    assert_eq!(
        run("for $x in (1, 2), $y in (10, 20) return $x + $y"),
        "11 21 12 22"
    );
}

#[test]
fn flwor_order_by() {
    assert_eq!(run("for $x in (3, 1, 2) order by $x return $x"), "1 2 3");
    assert_eq!(
        run("for $x in (3, 1, 2) order by $x descending return $x"),
        "3 2 1"
    );
    // sequences flatten before binding: six items total
    assert_eq!(
        run("for $p in ((1, 2), (2, 1), (1, 1)) for $x in $p order by $x return $x"),
        "1 1 1 1 2 2"
    );
    // empty least default
    assert_eq!(
        run("for $x in (2, (), 1) order by $x return if (empty($x)) then \"E\" else $x"),
        // () binds per item... a for over (2,(),1) has only 2 items; use let trick instead
        "1 2"
    );
}

#[test]
fn order_by_empty_handling() {
    let q = |modifier: &str| {
        format!(
            "for $b in (<r><k>2</k></r>, <r/>, <r><k>1</k></r>) \
             order by $b/k {modifier} \
             return if ($b/k) then string($b/k) else \"E\""
        )
    };
    assert_eq!(run(&q("")), "E 1 2", "default empty least");
    assert_eq!(run(&q("empty greatest")), "1 2 E");
    assert_eq!(run(&q("descending")), "2 1 E");
    assert_eq!(run(&q("descending empty greatest")), "E 2 1");
}

#[test]
fn order_by_untyped_compares_as_string() {
    let q = "for $b in (<v>10</v>, <v>9</v>) order by $b return string($b)";
    assert_eq!(run(q), "10 9", "string order: \"10\" < \"9\"");
    let qn = "for $b in (<v>10</v>, <v>9</v>) order by number($b) return string($b)";
    assert_eq!(run(qn), "9 10", "numeric order");
}

#[test]
fn order_by_is_stable() {
    let q = "for $p in ((1, \"a\"), (1, \"b\")) return () ,
             for $x at $i in (\"c\", \"a\", \"b\") order by 1 return $x";
    // constant key: binding order preserved
    assert_eq!(run(q), "c a b");
}

#[test]
fn return_at_output_numbering() {
    // §4: output ordinal after order by
    assert_eq!(
        run("for $x in (30, 10, 20) order by $x descending return at $r ($r * 100 + $x)"),
        "130 220 310"
    );
    // contrast with input positional variable
    assert_eq!(
        run("for $x at $i in (30, 10, 20) order by $x return ($i, $x)"),
        "2 10 3 20 1 30"
    );
    // top-k filtering requires at on return + predicate... use where on a second flwor
    assert_eq!(
        run(
            "for $r in (for $x in (5, 9, 1, 7) order by $x descending return at $rank \
             (if ($rank <= 2) then $x else ())) return $r"
        ),
        "9 7"
    );
}

#[test]
fn constructors_direct() {
    assert_eq!(run("<a/>"), "<a/>");
    assert_eq!(run("<a>text</a>"), "<a>text</a>");
    assert_eq!(run("<a b=\"1\">x</a>"), "<a b=\"1\">x</a>");
    assert_eq!(run("<a>{1 + 1}</a>"), "<a>2</a>");
    assert_eq!(run("<a>{1, 2, 3}</a>"), "<a>1 2 3</a>");
    assert_eq!(run("<a>x{1}y</a>"), "<a>x1y</a>");
    assert_eq!(run("<a><b>{2}</b><c/></a>"), "<a><b>2</b><c/></a>");
    // attribute value templates
    assert_eq!(
        run("let $y := 2004 return <r year=\"{$y}\"/>"),
        "<r year=\"2004\"/>"
    );
    assert_eq!(
        run("let $y := (1,2) return <r v=\"{$y}!\"/>"),
        "<r v=\"1 2!\"/>"
    );
}

#[test]
fn constructors_copy_nodes() {
    assert_eq!(
        run_xml("<list>{//book[3]/title}</list>", BIB),
        "<list><title>Understanding SQL and Java Together</title></list>"
    );
    // copied nodes have new identity
    assert_eq!(
        run_xml(
            "let $c := <w>{//book[1]/year}</w> return $c/year is //book[1]/year",
            BIB
        ),
        "false"
    );
}

#[test]
fn constructors_computed() {
    assert_eq!(run("element result { 1 + 1 }"), "<result>2</result>");
    assert_eq!(
        run("element r { attribute year { 2004 }, \"x\" }"),
        "<r year=\"2004\">x</r>"
    );
    assert_eq!(run("text { \"hello\" }"), "hello");
    assert_eq!(run("<!--note-->"), "<!--note-->");
    assert_eq!(run("<?app data?>"), "<?app data?>");
}

#[test]
fn builtin_functions_e2e() {
    // prices atomize as untyped -> aggregate in the double space
    assert_eq!(run_xml("avg(//book/price)", BIB), "56.63333333333333");
    assert_eq!(run_xml("max(//book/price)", BIB), "65");
    assert_eq!(run_xml("min(//book/year)", BIB), "1993");
    assert_eq!(run_xml("count(distinct-values(//book/year))", BIB), "2");
    assert_eq!(
        run_xml("count(distinct-values(//book/publisher))", BIB),
        "1"
    );
    assert_eq!(
        run_xml(
            "string-join(for $b in //book return string($b/year), \",\")",
            BIB
        ),
        "1993,1993,2000"
    );
    assert_eq!(run_xml("exists(//book[4])", BIB), "false");
    assert_eq!(
        run_xml("deep-equal(//book[1]/author, //book[1]/author)", BIB),
        "true"
    );
    assert_eq!(
        run_xml("deep-equal(//book[1]/author, //book[2]/author)", BIB),
        "false"
    );
}

#[test]
fn datetime_functions_e2e() {
    let xml = r#"<s><sale><timestamp>2004-01-31T11:32:07</timestamp></sale></s>"#;
    assert_eq!(run_xml("//sale/year-from-dateTime(timestamp)", xml), "2004");
    assert_eq!(run_xml("//sale/month-from-dateTime(timestamp)", xml), "1");
    assert_eq!(
        run_xml("year-from-dateTime(xs:dateTime(string(//timestamp)))", xml),
        "2004"
    );
}

#[test]
fn user_functions() {
    assert_eq!(
        run(
            "declare function local:fact($n as xs:integer) as xs:integer \
             { if ($n le 1) then 1 else $n * local:fact($n - 1) }; \
             local:fact(6)"
        ),
        "720"
    );
    assert_eq!(
        run("declare function local:add($a, $b) { $a + $b }; local:add(2, 3)"),
        "5"
    );
    // untyped argument cast via function conversion
    assert_eq!(
        run(
            "declare function local:double($n as xs:double) { $n * 2 }; \
             local:double(<v>2.5</v>)"
        ),
        "5"
    );
    assert_eq!(
        run_err("declare function local:inf($n) { local:inf($n) }; local:inf(1)"),
        ErrorCode::Other
    );
}

#[test]
fn global_variables() {
    assert_eq!(run("declare variable $base := 10; $base + 5"), "15");
    assert_eq!(
        run("declare variable $a := 2; declare variable $b := $a * 3; $b"),
        "6"
    );
}

#[test]
fn position_and_last_in_predicates() {
    assert_eq!(
        run_xml("string(//book[position() = 2]/title)", BIB),
        "Understanding the New SQL"
    );
    assert_eq!(run_xml("string(//book[last()]/year)", BIB), "2000");
    assert_eq!(run_xml("count(//book[position() le 2])", BIB), "2");
}

#[test]
fn filter_expressions() {
    assert_eq!(run("(11 to 20)[3]"), "13");
    assert_eq!(run("(1 to 10)[. mod 2 = 0]"), "2 4 6 8 10");
    assert_eq!(run("let $s := (\"a\", \"b\", \"c\") return $s[2]"), "b");
    assert_eq!(run("(1 to 5)[. > 2][2]"), "4");
}

#[test]
fn casts_and_instance_of() {
    assert_eq!(run("\"42\" cast as xs:integer"), "42");
    assert_eq!(run("() cast as xs:integer?"), "");
    assert_eq!(run("5 instance of xs:integer"), "true");
    assert_eq!(run("5 instance of xs:decimal"), "true");
    assert_eq!(run("5.0 instance of xs:integer"), "false");
    assert_eq!(run("(1, 2) instance of xs:integer+"), "true");
    assert_eq!(run("() instance of empty-sequence()"), "true");
    assert_eq!(run("<a/> instance of element(a)"), "true");
    assert_eq!(run("<a/> instance of element(b)"), "false");
    assert_eq!(run_err("() cast as xs:integer"), ErrorCode::XPTY0004);
}

#[test]
fn string_value_of_complex_content() {
    assert_eq!(run("string(<p>one <b>two</b> three</p>)"), "one two three");
}

#[test]
fn errors_have_codes() {
    assert_eq!(run_err("$undefined"), ErrorCode::XPST0008);
    assert_eq!(run_err("nonexistent-fn()"), ErrorCode::XPST0017);
    assert_eq!(run_err("sum((1, \"a\"))"), ErrorCode::FORG0006);
    assert_eq!(run_err("error(\"x\", \"boom\")"), ErrorCode::FOER0000);
}

#[test]
fn doc_and_collection() {
    let engine = Engine::new();
    let d1 = parse_document("<a><v>1</v></a>").unwrap();
    let d2 = parse_document("<a><v>2</v></a>").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.register_document("one.xml", &d1);
    ctx.register_collection("all", vec![d1.root(), d2.root()]);
    ctx.set_default_collection(vec![d2.root()]);
    let q = engine.compile("sum(doc(\"one.xml\")//v)").unwrap();
    assert_eq!(serialize_sequence(&q.run(&ctx).unwrap()), "1");
    let q = engine.compile("sum(collection(\"all\")//v)").unwrap();
    assert_eq!(serialize_sequence(&q.run(&ctx).unwrap()), "3");
    let q = engine.compile("sum(collection()//v)").unwrap();
    assert_eq!(serialize_sequence(&q.run(&ctx).unwrap()), "2");
    let q = engine.compile("doc(\"missing.xml\")").unwrap();
    assert!(q.run(&ctx).is_err());
}

#[test]
fn stats_count_work() {
    let engine = Engine::new();
    let doc = parse_document(BIB).unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let q = engine.compile("count(//book)").unwrap();
    q.run(&ctx).unwrap();
    assert!(ctx.stats.snapshot().nodes_visited > 0);
    ctx.stats.reset();
    let q = engine
        .compile("for $b in //book group by $b/year into $y return $y")
        .unwrap();
    q.run(&ctx).unwrap();
    assert_eq!(ctx.stats.snapshot().tuples_grouped, 3);
    assert_eq!(ctx.stats.snapshot().groups_emitted, 2);
}
