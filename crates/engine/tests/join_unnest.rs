//! The join-unnesting rewrite end to end: detection, explain
//! annotations, hash execution vs. the nested-loop plan, the mode
//! gate, and the join counters.
//!
//! Regenerate goldens with `UPDATE_GOLDEN=1 cargo test`.

use std::sync::Arc;

use xqa_engine::{DynamicContext, Engine, EngineOptions, JoinMode, RewriteKind};
use xqa_storage::CatalogStatistics;
use xqa_xmlparse::serialize_sequence;

/// Orders with repeating ship modes: the paper's §6 self-join shape.
const DOC: &str = "<r>\
     <order><lineitem><shipmode>AIR</shipmode><qty>1</qty></lineitem>\
            <lineitem><shipmode>RAIL</shipmode><qty>2</qty></lineitem></order>\
     <order><lineitem><shipmode>AIR</shipmode><qty>3</qty></lineitem>\
            <lineitem><shipmode>SHIP</shipmode><qty>4</qty></lineitem></order>\
     <order><lineitem><shipmode>RAIL</shipmode><qty>5</qty></lineitem>\
            <lineitem><shipmode>AIR</shipmode><qty>6</qty></lineitem></order>\
     </r>";

/// The paper's baseline self-join: one inner FLWOR per distinct key.
const SELF_JOIN: &str = "for $a in distinct-values(//order/lineitem/shipmode) \
     let $items := for $i in //order/lineitem where $i/shipmode = $a return $i \
     order by string($a) \
     return <g m=\"{$a}\">{count($items)}</g>";

/// The existential formulation: a semi-join filter.
const SEMI_JOIN: &str = "for $o in //order \
     where some $i in //order/lineitem[qty > 4] satisfies \
         $i/shipmode = $o/lineitem[1]/shipmode \
     return count($o/lineitem)";

fn ctx() -> DynamicContext {
    let doc = xqa_xmlparse::parse_document(DOC).expect("parse");
    let mut c = DynamicContext::new();
    c.set_context_document(&doc);
    c
}

fn indexed_ctx() -> (DynamicContext, Arc<CatalogStatistics>) {
    let mut c = ctx();
    c.index_documents();
    let stats = Arc::new(CatalogStatistics::from_stores(c.stores().map(Arc::as_ref)));
    (c, stats)
}

fn engine(join: JoinMode) -> Engine {
    Engine::with_options(EngineOptions {
        join,
        ..Default::default()
    })
}

fn run(e: &Engine, c: &DynamicContext, query: &str) -> String {
    serialize_sequence(&e.compile(query).expect("compile").run(c).expect("run"))
}

#[test]
fn hash_mode_annotates_the_let_shape() {
    let plan = engine(JoinMode::Hash).compile(SELF_JOIN).expect("compile");
    let text = plan.explain();
    assert!(text.contains("[hash join key="), "{text}");
    assert!(text.contains("HashJoin(key="), "{text}");
    assert!(
        plan.applied_rewrites()
            .iter()
            .any(|n| n.kind == RewriteKind::JoinUnnest),
        "no join-unnest rewrite note: {:?}",
        plan.applied_rewrites()
    );
}

#[test]
fn hash_mode_annotates_the_existential_shape() {
    let plan = engine(JoinMode::Hash).compile(SEMI_JOIN).expect("compile");
    let text = plan.explain();
    assert!(text.contains("[hash join key="), "{text}");
    assert!(text.contains("HashJoin(key="), "{text}");
}

#[test]
fn nested_mode_never_annotates() {
    for query in [SELF_JOIN, SEMI_JOIN] {
        let plan = engine(JoinMode::Nested).compile(query).expect("compile");
        assert!(!plan.explain().contains("hash join"), "{}", plan.explain());
    }
}

#[test]
fn auto_without_statistics_stays_nested() {
    let plan = engine(JoinMode::Auto).compile(SELF_JOIN).expect("compile");
    assert!(!plan.explain().contains("hash join"), "{}", plan.explain());
}

#[test]
fn auto_with_statistics_annotates() {
    let (_, stats) = indexed_ctx();
    let plan = engine(JoinMode::Auto)
        .with_statistics(stats)
        .compile(SELF_JOIN)
        .expect("compile");
    assert!(
        plan.explain().contains("[hash join key="),
        "{}",
        plan.explain()
    );
}

#[test]
fn hash_and_nested_agree_on_the_self_join() {
    let c = ctx();
    assert_eq!(
        run(&engine(JoinMode::Hash), &c, SELF_JOIN),
        run(&engine(JoinMode::Nested), &c, SELF_JOIN),
    );
}

#[test]
fn hash_and_nested_agree_on_the_semi_join() {
    let c = ctx();
    assert_eq!(
        run(&engine(JoinMode::Hash), &c, SEMI_JOIN),
        run(&engine(JoinMode::Nested), &c, SEMI_JOIN),
    );
}

#[test]
fn forced_hash_fires_the_join_counters() {
    let c = ctx();
    let before = c.stats.snapshot();
    run(&engine(JoinMode::Hash), &c, SELF_JOIN);
    let after = c.stats.snapshot();
    assert!(
        after.join_hash_probes > before.join_hash_probes,
        "no hash probes recorded"
    );
    assert!(
        after.join_build_tuples > before.join_build_tuples,
        "no build tuples recorded"
    );
}

#[test]
fn nested_mode_leaves_the_join_counters_at_zero() {
    let c = ctx();
    let before = c.stats.snapshot();
    run(&engine(JoinMode::Nested), &c, SELF_JOIN);
    let after = c.stats.snapshot();
    assert_eq!(after.join_hash_probes, before.join_hash_probes);
    assert_eq!(after.join_build_tuples, before.join_build_tuples);
}

/// A probe whose atoms sit outside the build side's comparison class
/// must raise exactly what the nested plan raises (the fallback scan),
/// not silently miss.
#[test]
fn mixed_type_keys_keep_nested_error_behavior() {
    let query = "for $a in (1, 2) \
         let $m := for $y in ('x', 'y') where $y = $a return $y \
         return count($m)";
    let c = DynamicContext::new();
    let hash = engine(JoinMode::Hash)
        .compile(query)
        .expect("compile")
        .run(&c);
    let nested = engine(JoinMode::Nested)
        .compile(query)
        .expect("compile")
        .run(&c);
    match (hash, nested) {
        (Err(h), Err(n)) => assert_eq!(h.to_string(), n.to_string()),
        (h, n) => panic!("expected both plans to raise, got {h:?} vs {n:?}"),
    }
}

/// Untyped document text joins against untyped text: the common case,
/// and the one the string comparison class keeps on the hash path.
#[test]
fn untyped_keys_match_across_collections() {
    let query = "for $o in //order \
         let $m := for $i in //order/lineitem where $i/shipmode = $o/lineitem[1]/shipmode \
                   return $i \
         return count($m)";
    let c = ctx();
    assert_eq!(
        run(&engine(JoinMode::Hash), &c, query),
        run(&engine(JoinMode::Nested), &c, query),
    );
}

/// An empty build side must not evaluate the probe expression — the
/// nested loop never does.
#[test]
fn empty_build_side_binds_empty() {
    let query = "for $a in (1, 2, 3) \
         let $m := for $y in //nosuch where $y = $a return $y \
         return count($m)";
    let c = ctx();
    assert_eq!(run(&engine(JoinMode::Hash), &c, query), "0 0 0");
    assert_eq!(run(&engine(JoinMode::Nested), &c, query), "0 0 0");
}
