//! Error-path coverage: every failure class the engine can report,
//! with the right W3C code and a useful message.

use xqa_engine::{DynamicContext, Engine, EngineError};
use xqa_xdm::ErrorCode;
use xqa_xmlparse::parse_document;

fn try_run(query: &str) -> Result<String, EngineError> {
    let engine = Engine::new();
    let compiled = engine.compile(query)?;
    let doc = parse_document("<r><v>1</v><v>2</v><t>x</t></r>").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    compiled
        .run(&ctx)
        .map(|seq| xqa_xmlparse::serialize_sequence(&seq))
}

fn code_of(query: &str) -> ErrorCode {
    match try_run(query) {
        Err(e) => e.code(),
        Ok(v) => panic!("expected error for {query:?}, got {v:?}"),
    }
}

#[test]
fn static_errors() {
    assert_eq!(code_of("$ghost"), ErrorCode::XPST0008);
    assert_eq!(code_of("let $x := 1 return $y"), ErrorCode::XPST0008);
    assert_eq!(code_of("no-such-function()"), ErrorCode::XPST0017);
    assert_eq!(
        code_of("concat(1)"),
        ErrorCode::XPST0017,
        "below minimum arity"
    );
    assert_eq!(
        code_of("true(1)"),
        ErrorCode::XPST0017,
        "above maximum arity"
    );
    assert_eq!(code_of("1 +"), ErrorCode::XPST0003);
    assert_eq!(code_of("\"x\" cast as xs:duration"), ErrorCode::XPST0003);
}

#[test]
fn scope_error_message_explains_group_by() {
    let err = try_run("for $v in //v group by $v into $k return count($v)").unwrap_err();
    assert_eq!(err.code(), ErrorCode::XPST0008);
    let msg = err.to_string();
    assert!(msg.contains("group by"), "{msg}");
    assert!(msg.contains("$v"), "{msg}");
    assert!(msg.contains("§3.2"), "{msg}");
}

#[test]
fn arithmetic_errors() {
    assert_eq!(code_of("1 idiv 0"), ErrorCode::FOAR0001);
    assert_eq!(code_of("1 mod 0"), ErrorCode::FOAR0001);
    assert_eq!(code_of("1.5 div 0.0"), ErrorCode::FOAR0001);
    assert_eq!(code_of("9223372036854775807 * 2"), ErrorCode::FOAR0002);
    assert_eq!(code_of("1 + \"x\""), ErrorCode::XPTY0004);
    assert_eq!(
        code_of("//t + 1"),
        ErrorCode::FORG0001,
        "non-numeric untyped content"
    );
    assert_eq!(
        code_of("(1, 2) + 1"),
        ErrorCode::XPTY0004,
        "non-singleton operand"
    );
}

#[test]
fn comparison_errors() {
    assert_eq!(code_of("1 eq \"x\""), ErrorCode::XPTY0004);
    assert_eq!(code_of("(1, 2) lt 3"), ErrorCode::XPTY0004);
    assert_eq!(
        code_of("1 = \"x\""),
        ErrorCode::XPTY0004,
        "general comparison, typed operands"
    );
    assert_eq!(
        code_of("5 is //v[1]"),
        ErrorCode::XPTY0004,
        "node comparison on atomic"
    );
}

#[test]
fn sequence_type_errors() {
    assert_eq!(code_of("boolean((1, 2))"), ErrorCode::FORG0006);
    assert_eq!(code_of("if ((1,2)) then 1 else 2"), ErrorCode::FORG0006);
    assert_eq!(code_of("sum((1, \"x\"))"), ErrorCode::FORG0006);
    assert_eq!(code_of("avg((1, current-date()))"), ErrorCode::FORG0006);
    assert_eq!(code_of("zero-or-one((1, 2))"), ErrorCode::FORG0003);
    assert_eq!(code_of("one-or-more(())"), ErrorCode::FORG0004);
    assert_eq!(code_of("exactly-one(())"), ErrorCode::FORG0005);
}

#[test]
fn cast_errors() {
    assert_eq!(code_of("\"abc\" cast as xs:integer"), ErrorCode::FORG0001);
    assert_eq!(code_of("() cast as xs:integer"), ErrorCode::XPTY0004);
    assert_eq!(
        code_of("\"2004-13-01\" cast as xs:date"),
        ErrorCode::FODT0001
    );
    assert_eq!(code_of("xs:dateTime(\"yesterday\")"), ErrorCode::FORG0001);
}

#[test]
fn order_by_type_errors() {
    // Mixed incomparable key types across tuples.
    assert_eq!(
        code_of("for $x in (1, \"a\") order by $x return $x"),
        ErrorCode::XPTY0004
    );
    // Multi-item order key.
    assert_eq!(
        code_of("for $x in (1, 2) order by (1, 2) return $x"),
        ErrorCode::XPTY0004
    );
}

#[test]
fn path_type_errors() {
    assert_eq!(
        code_of("(1)/child::a"),
        ErrorCode::XPTY0004,
        "axis step on atomic"
    );
    assert_eq!(
        code_of("//v/(if (. = 1) then . else 5)"),
        ErrorCode::XPTY0004,
        "mixed step result"
    );
}

#[test]
fn function_conversion_errors() {
    let err = try_run("declare function local:f($n as xs:integer) { $n }; local:f(\"nope\")")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::XPTY0004);
    assert!(err.to_string().contains("local:f"), "{err}");
    // Cardinality violation on return type.
    let err =
        try_run("declare function local:g($n) as xs:integer { ($n, $n) }; local:g(1)").unwrap_err();
    assert_eq!(err.code(), ErrorCode::XPTY0004);
    assert!(err.to_string().contains("result of local:g"), "{err}");
}

#[test]
fn for_let_declared_type_errors() {
    assert_eq!(
        code_of("for $x as xs:integer in (1, \"two\") return $x"),
        ErrorCode::XPTY0004
    );
    assert_eq!(
        code_of("let $x as xs:integer := (1, 2) return $x"),
        ErrorCode::XPTY0004
    );
}

#[test]
fn errors_inside_group_by_propagate() {
    // Key expression errors surface, not panic.
    assert_eq!(
        code_of("for $v in //v group by sum(($v, \"x\")) into $k return $k"),
        ErrorCode::FORG0006
    );
    // Nest order-by key errors too.
    assert_eq!(
        code_of(
            "for $v in (1, \"a\") group by 1 into $k \
             nest $v order by $v into $vs return count($vs)"
        ),
        ErrorCode::XPTY0004
    );
}

#[test]
fn errors_in_predicates_propagate() {
    assert_eq!(code_of("//v[1 div 0]"), ErrorCode::FOAR0001);
    assert_eq!(code_of("(1 to 3)[sum((., \"x\"))]"), ErrorCode::FORG0006);
}

#[test]
fn constructed_attribute_after_content_is_rejected() {
    assert_eq!(
        code_of("element r { \"text first\", attribute a { 1 } }"),
        ErrorCode::Other
    );
}

#[test]
fn division_by_zero_in_folded_position_still_raises_at_runtime() {
    // Constant folding must not turn `1 div 0` into a compile error or
    // silently drop it.
    let err = try_run("1 div 0").unwrap_err();
    assert!(matches!(err, EngineError::Dynamic(_)), "{err:?}");
}

#[test]
fn context_item_errors() {
    let engine = Engine::new();
    let q = engine.compile("//v").unwrap();
    let ctx = DynamicContext::new(); // no context document
    let err = q.run(&ctx).unwrap_err();
    assert!(err.to_string().contains("context item"), "{err}");
    let q = engine.compile("position()").unwrap();
    assert!(q.run(&ctx).is_err());
}

#[test]
fn good_queries_do_not_error() {
    // Sanity inverse: close cousins of the error cases succeed.
    assert_eq!(try_run("1 idiv 1").unwrap(), "1");
    assert_eq!(try_run("string(//v[1]) cast as xs:integer").unwrap(), "1");
    assert_eq!(
        try_run("for $x in (2, 1) order by $x return $x").unwrap(),
        "1 2"
    );
    assert_eq!(
        try_run("element r { attribute a { 1 }, \"text\" }").unwrap(),
        "<r a=\"1\">text</r>"
    );
}
