//! End-to-end tests for the paper's extensions: `group by`, `nest`,
//! `using`, nest `order by`, post-group `let`/`where`, and output
//! numbering — each mapped to the section of the paper it reproduces.

use xqa_engine::{DynamicContext, Engine};
use xqa_xdm::ErrorCode;
use xqa_xmlparse::{parse_document, serialize_sequence};

fn run_xml(query: &str, xml: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile {query:?}: {e}"));
    let doc = parse_document(xml).expect("well-formed test document");
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run {query:?}: {e}"));
    serialize_sequence(&result)
}

fn run(query: &str) -> String {
    run_xml(query, "<empty/>")
}

/// Bibliography with the §3.1/Figure-1 shape: 3 Morgan Kaufmann 1993
/// books (net prices 65, 43, 57), 2 Morgan Kaufmann 1995 (34, 75),
/// 1 Addison-Wesley 1993 (48), plus one book with no publisher.
const BIB: &str = r#"
<bib>
  <book><title>A</title><author>Gray</author><author>Reuter</author>
        <publisher>Morgan Kaufmann</publisher><year>1993</year>
        <price>70.00</price><discount>5.00</discount></book>
  <book><title>B</title><author>Reuter</author><author>Gray</author>
        <publisher>Morgan Kaufmann</publisher><year>1993</year>
        <price>45.00</price><discount>2.00</discount></book>
  <book><title>C</title><author>Gray</author>
        <publisher>Morgan Kaufmann</publisher><year>1993</year>
        <price>60.00</price><discount>3.00</discount></book>
  <book><title>D</title><author>Melton</author>
        <publisher>Morgan Kaufmann</publisher><year>1995</year>
        <price>36.00</price><discount>2.00</discount></book>
  <book><title>E</title><author>Melton</author>
        <publisher>Morgan Kaufmann</publisher><year>1995</year>
        <price>80.00</price><discount>5.00</discount></book>
  <book><title>F</title><author>Date</author>
        <publisher>Addison-Wesley</publisher><year>1993</year>
        <price>50.00</price><discount>2.00</discount></book>
  <book><title>G</title><author>Anon</author><year>1993</year>
        <price>20.00</price><discount>1.00</discount></book>
</bib>"#;

#[test]
fn q1_group_by_publisher_year() {
    // Paper §3.1 Q1: average net price per (publisher, year).
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $p, $b/year into $y
           nest $b/price - $b/discount into $netprices
           order by $p, $y
           return <group>{string($p), string($y)}
             <avg-net-price>{avg($netprices)}</avg-net-price></group>"#,
        BIB,
    );
    // Empty publisher sorts least; groups: (,1993), (AW,1993), (MK,1993), (MK,1995)
    assert_eq!(
        out,
        "<group> 1993<avg-net-price>19</avg-net-price></group>\
         <group>Addison-Wesley 1993<avg-net-price>48</avg-net-price></group>\
         <group>Morgan Kaufmann 1993<avg-net-price>55</avg-net-price></group>\
         <group>Morgan Kaufmann 1995<avg-net-price>54.5</avg-net-price></group>"
    );
}

#[test]
fn q1_books_without_publisher_form_their_own_group() {
    // §3.1: "an empty sequence is considered to be a distinct value".
    // Count groups via a constructed marker ($p itself is empty for the
    // no-publisher group, so counting $p would undercount).
    let count = run_xml(
        "count(for $b in //book group by $b/publisher into $p return <g/>)",
        BIB,
    );
    assert_eq!(count, "3", "MK, AW, and the no-publisher group");
}

#[test]
fn q2a_group_by_author_sequence_permutation_sensitive() {
    // §3.3: default deep-equal grouping — (Gray,Reuter) ≠ (Reuter,Gray).
    let out = run_xml(
        r#"for $b in //book
           group by $b/author into $a
           nest $b/title into $titles
           return <g>{string-join(for $x in $a return string($x), "+")}:{string-join(for $t in $titles return string($t), "")}</g>"#,
        BIB,
    );
    assert!(out.contains("<g>Gray+Reuter:A</g>"), "{out}");
    assert!(out.contains("<g>Reuter+Gray:B</g>"), "{out}");
    assert!(out.contains("<g>Gray:C</g>"), "{out}");
    assert!(out.contains("<g>Melton:DE</g>"), "{out}");
}

#[test]
fn q2a_set_equal_using_clause() {
    // §3.3: user-defined set-equal merges permutations.
    let out = run_xml(
        r#"declare function local:set-equal
             ($arg1 as item()*, $arg2 as item()*) as xs:boolean
           { (every $i1 in $arg1 satisfies
                some $i2 in $arg2 satisfies $i1 eq $i2)
             and (every $i2 in $arg2 satisfies
                some $i1 in $arg1 satisfies $i1 eq $i2) };
           for $b in //book
           group by $b/author into $a using local:set-equal
           nest $b/title into $titles
           return <g>{count($titles)}</g>"#,
        BIB,
    );
    // Groups: {Gray,Reuter} (A+B), {Gray} (C), {Melton} (D,E), {Date} (F), {Anon} (G)
    assert_eq!(out, "<g>2</g><g>1</g><g>2</g><g>1</g><g>1</g>");
}

#[test]
fn q4_post_group_let_where_order() {
    // Paper §3.1 Q4: publishers with avg price > threshold.
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $pub nest $b/price into $prices
           let $avgprice := avg($prices)
           where $avgprice > 40
           order by $avgprice descending
           return <expensive-publisher>{string($pub)}
              <avg-price>{$avgprice}</avg-price></expensive-publisher>"#,
        BIB,
    );
    // MK avg = (70+45+60+36+80)/5 = 58.2 ; AW = 50 ; none = 20 (filtered)
    assert_eq!(
        out,
        "<expensive-publisher>Morgan Kaufmann<avg-price>58.2</avg-price></expensive-publisher>\
         <expensive-publisher>Addison-Wesley<avg-price>50</avg-price></expensive-publisher>"
    );
}

#[test]
fn q5_distinct_pairs_no_nest() {
    // Paper §3.1 Q5: SELECT DISTINCT-style group by without nest.
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $pub, $b/year into $year
           order by $pub, $year
           return <pair>{string($pub)}|{string($year)}</pair>"#,
        BIB,
    );
    assert_eq!(
        out,
        "<pair>|1993</pair><pair>Addison-Wesley|1993</pair>\
         <pair>Morgan Kaufmann|1993</pair><pair>Morgan Kaufmann|1995</pair>"
    );
}

#[test]
fn q6_count_nested_titles() {
    // Paper §3.1 Q6: yearly report with count and list.
    let out = run_xml(
        r#"for $b in //book
           group by $b/year into $year
           nest $b/title into $titles
           order by $year
           return <yearly-report>{string($year)}
             <book-count>{count($titles)}</book-count></yearly-report>"#,
        BIB,
    );
    assert_eq!(
        out,
        "<yearly-report>1993<book-count>5</book-count></yearly-report>\
         <yearly-report>1995<book-count>2</book-count></yearly-report>"
    );
}

#[test]
fn q7_hierarchy_inversion_rebinds_same_name() {
    // Paper §3.2 Q7: nest $b into $b — rebinding the same name.
    let out = run_xml(
        r#"for $b in //book
           group by $b/publisher into $pub nest $b into $b
           order by $pub descending
           return <publisher><name>{string($pub)}</name>
             <books>{count($b)}</books></publisher>"#,
        BIB,
    );
    assert_eq!(
        out,
        "<publisher><name>Morgan Kaufmann</name><books>5</books></publisher>\
         <publisher><name>Addison-Wesley</name><books>1</books></publisher>\
         <publisher><name/><books>1</books></publisher>"
    );
}

#[test]
fn nested_sequences_flatten_in_nest() {
    // §3.1: nest values merge and lose identity; empty nest expressions
    // contribute nothing (count implications).
    let out = run_xml(
        r#"for $b in //book
           group by $b/year into $y
           nest $b/discount into $ds, $b/author into $as
           order by $y
           return <g>{count($ds)},{count($as)}</g>"#,
        BIB,
    );
    // 1993: 5 books, 5 discounts, 7 authors (A and B have two each);
    // 1995: 2 books, 2 discounts, 2 authors
    assert_eq!(out, "<g>5,7</g><g>2,2</g>");
}

#[test]
fn group_representative_is_from_first_tuple() {
    // The grouping variable is bound to a representative node of the
    // group (implementation-dependent per the paper; we take the first).
    let out = run_xml(
        r#"for $b in //book
           group by $b/year into $y
           nest $b/title into $ts
           order by $y
           return ($y is (//book/year)[1])"#,
        BIB,
    );
    assert_eq!(out, "true false");
}

#[test]
fn grouping_on_numbers_spans_numeric_tower() {
    let out =
        run("for $v in (1, 1.0, 1e0, 2) group by $v into $k nest $v into $vs return count($vs)");
    assert_eq!(out, "3 1", "1 = 1.0 = 1e0 group together");
}

#[test]
fn nest_order_by_orders_within_group() {
    // §3.4.1: nest ... order by controls the nested sequence order.
    let out = run(
        r#"for $s in (<s><r>w</r><t>3</t></s>, <s><r>w</r><t>1</t></s>,
                      <s><r>e</r><t>2</t></s>, <s><r>w</r><t>2</t></s>)
           group by $s/r into $region
           nest $s/t order by $s/t into $ts
           order by $region
           return <g>{string($region)}:{for $t in $ts return string($t)}</g>"#,
    );
    assert_eq!(out, "<g>e:2</g><g>w:1 2 3</g>");
}

#[test]
fn nest_order_by_descending() {
    let out = run(r#"for $s in (<v>1</v>, <v>3</v>, <v>2</v>)
           group by 1 into $k
           nest $s order by number($s) descending into $vs
           return string-join(for $v in $vs return string($v), ",")"#);
    assert_eq!(out, "3,2,1");
}

#[test]
fn nest_default_order_preserves_input_tuple_order() {
    let out = run(r#"for $s in (<v>b</v>, <v>c</v>, <v>a</v>)
           group by 1 into $k
           nest $s into $vs
           return string-join(for $v in $vs return string($v), "")"#);
    assert_eq!(out, "bca");
}

#[test]
fn groups_without_order_by_appear_in_first_seen_order() {
    let out = run("for $v in (3, 1, 3, 2, 1) group by $v into $k nest $v into $vs return $k");
    assert_eq!(out, "3 1 2");
}

#[test]
fn q3_nested_grouped_flwors() {
    // Paper Q3 with the extension: region/year totals vs state totals.
    let xml = r#"<sales>
        <sale><timestamp>2004-02-01T10:00:00</timestamp><product>Tea</product>
          <state>CA</state><region>West</region><quantity>10</quantity><price>2.00</price></sale>
        <sale><timestamp>2004-03-01T10:00:00</timestamp><product>Tea</product>
          <state>OR</state><region>West</region><quantity>5</quantity><price>4.00</price></sale>
        <sale><timestamp>2004-04-01T10:00:00</timestamp><product>Tea</product>
          <state>CA</state><region>West</region><quantity>1</quantity><price>20.00</price></sale>
        <sale><timestamp>2005-01-01T10:00:00</timestamp><product>Tea</product>
          <state>NY</state><region>East</region><quantity>2</quantity><price>7.00</price></sale>
    </sales>"#;
    let out = run_xml(
        r#"for $s in //sale
           group by $s/region into $region,
                    year-from-dateTime($s/timestamp) into $year
           nest $s into $region-sales
           let $region-sum := sum( $region-sales/(quantity * price) )
           order by $year, $region
           return
             for $s in $region-sales
             group by $s/state into $state
             nest $s into $state-sales
             let $state-sum := sum( $state-sales/(quantity * price) )
             order by $state
             return
               <summary>{string($region), string($year), string($state)}
                 <state-sales>{$state-sum}</state-sales>
                 <region-sales>{$region-sum}</region-sales>
                 <pct>{$state-sum * 100 div $region-sum}</pct>
               </summary>"#,
        xml,
    );
    // West 2004: CA = 40, OR = 20, region 60; East 2005: NY = 14.
    assert!(
        out.contains(
            "<summary>West 2004 CA<state-sales>40</state-sales><region-sales>60</region-sales>"
        ),
        "{out}"
    );
    assert!(out.contains("<pct>66.66666666666667</pct>"), "{out}");
    assert!(
        out.contains("<summary>West 2004 OR<state-sales>20</state-sales>"),
        "{out}"
    );
    assert!(out.contains("<summary>East 2005 NY<state-sales>14</state-sales><region-sales>14</region-sales><pct>100</pct></summary>"), "{out}");
    // Ordered by year then region: 2004/West rows precede 2005/East.
    assert!(out.find("West 2004 CA").unwrap() < out.find("West 2004 OR").unwrap());
    assert!(out.find("West 2004 OR").unwrap() < out.find("East 2005 NY").unwrap());
}

#[test]
fn q8_moving_window_over_ordered_nest() {
    // Paper §3.4.1 Q8: previous-N-sales moving window (N=2 here).
    let xml = r#"<sales>
        <sale><timestamp>2004-01-03T00:00:00</timestamp><region>W</region><quantity>1</quantity><price>3.00</price></sale>
        <sale><timestamp>2004-01-01T00:00:00</timestamp><region>W</region><quantity>1</quantity><price>1.00</price></sale>
        <sale><timestamp>2004-01-02T00:00:00</timestamp><region>W</region><quantity>1</quantity><price>2.00</price></sale>
        <sale><timestamp>2004-01-04T00:00:00</timestamp><region>W</region><quantity>1</quantity><price>4.00</price></sale>
    </sales>"#;
    let out = run_xml(
        r#"for $s in //sale
           group by $s/region into $region
           nest $s order by $s/timestamp into $rs
           return
             <region name="{string($region)}">
               {for $s1 at $i in $rs
                return
                  <sale>
                    <amount>{$s1/quantity * $s1/price}</amount>
                    <prev-two>{sum(for $s2 at $j in $rs
                                   where $j >= $i - 2 and $j < $i
                                   return $s2/quantity * $s2/price)}</prev-two>
                  </sale>}
             </region>"#,
        xml,
    );
    assert_eq!(
        out,
        "<region name=\"W\">\
         <sale><amount>1</amount><prev-two>0</prev-two></sale>\
         <sale><amount>2</amount><prev-two>1</prev-two></sale>\
         <sale><amount>3</amount><prev-two>3</prev-two></sale>\
         <sale><amount>4</amount><prev-two>5</prev-two></sale>\
         </region>"
    );
}

#[test]
fn q10_ranking_with_group_and_output_numbering() {
    // Paper §4 Q10: monthly sales ranked by region.
    let xml = r#"<sales>
        <sale><timestamp>2004-10-02T00:00:00</timestamp><region>West</region><quantity>10</quantity><price>2.00</price></sale>
        <sale><timestamp>2004-10-05T00:00:00</timestamp><region>East</region><quantity>3</quantity><price>10.00</price></sale>
        <sale><timestamp>2004-10-09T00:00:00</timestamp><region>West</region><quantity>1</quantity><price>5.00</price></sale>
        <sale><timestamp>2004-11-01T00:00:00</timestamp><region>East</region><quantity>1</quantity><price>1.00</price></sale>
    </sales>"#;
    let out = run_xml(
        r#"for $s in //sale
           group by year-from-dateTime($s/timestamp) into $year,
                    month-from-dateTime($s/timestamp) into $month
           nest $s into $month-sales
           order by $year, $month
           return
             <monthly-report year="{$year}" month="{$month}">
               {for $ms in $month-sales
                group by $ms/region into $region
                nest $ms/quantity * $ms/price into $sales-amounts
                let $sum := sum($sales-amounts)
                order by $sum descending
                return at $rank
                  <regional-results>
                    <rank>{$rank}</rank>
                    {$region}
                    <total-sales>{$sum}</total-sales>
                  </regional-results>}
             </monthly-report>"#,
        xml,
    );
    assert_eq!(
        out,
        "<monthly-report year=\"2004\" month=\"10\">\
         <regional-results><rank>1</rank><region>East</region><total-sales>30</total-sales></regional-results>\
         <regional-results><rank>2</rank><region>West</region><total-sales>25</total-sales></regional-results>\
         </monthly-report>\
         <monthly-report year=\"2004\" month=\"11\">\
         <regional-results><rank>1</rank><region>East</region><total-sales>1</total-sales></regional-results>\
         </monthly-report>"
    );
}

#[test]
fn q11_rollup_over_ragged_hierarchy() {
    // Paper §5 Q11 using the user-defined membership function.
    let xml = r#"<bib>
      <book><title>TP</title><price>59.00</price>
        <categories><software><db><concurrency/></db><distributed/></software></categories>
      </book>
      <book><title>Readings</title><price>65.00</price>
        <categories><software><db/></software><anthology/></categories>
      </book>
    </bib>"#;
    let out = run_xml(
        r#"declare function local:paths($roots as element()*) as xs:string* {
             for $c in $roots
             return ( string(node-name($c)),
                      for $p in local:paths($c/*)
                      return concat(string(node-name($c)), "/", $p) ) };
           for $b in //book
           for $c in local:paths($b/categories/*)
           group by $c into $category
           nest $b/price into $prices
           order by $category
           return <result><category>{$category}</category>
                    <avg-price>{avg($prices)}</avg-price></result>"#,
        xml,
    );
    assert_eq!(
        out,
        "<result><category>anthology</category><avg-price>65</avg-price></result>\
         <result><category>software</category><avg-price>62</avg-price></result>\
         <result><category>software/db</category><avg-price>62</avg-price></result>\
         <result><category>software/db/concurrency</category><avg-price>59</avg-price></result>\
         <result><category>software/distributed</category><avg-price>59</avg-price></result>"
    );
}

#[test]
fn q11_rollup_with_builtin_membership_function() {
    // Same rollup via the xqa:paths builtin (§5: "we expect that a
    // common set of such membership functions will be provided").
    let xml = r#"<bib>
      <book><title>TP</title><price>59.00</price>
        <categories><software><db><concurrency/></db><distributed/></software></categories>
      </book>
      <book><title>Readings</title><price>65.00</price>
        <categories><software><db/></software><anthology/></categories>
      </book>
    </bib>"#;
    let out = run_xml(
        r#"for $b in //book
           for $c in xqa:paths($b/categories/*)
           group by $c into $category
           nest $b/price into $prices
           order by $category
           return <r>{$category}:{avg($prices)}</r>"#,
        xml,
    );
    assert_eq!(
        out,
        "<r>anthology:65</r><r>software:62</r><r>software/db:62</r>\
         <r>software/db/concurrency:59</r><r>software/distributed:59</r>"
    );
}

#[test]
fn q12_datacube_via_membership_function() {
    // Paper §5 Q12: cube over (publisher, year) — 4 groupings per book.
    let xml = r#"<bib>
      <book><publisher>MK</publisher><year>1993</year><price>10.00</price></book>
      <book><publisher>MK</publisher><year>1994</year><price>20.00</price></book>
      <book><year>1993</year><price>30.00</price></book>
    </bib>"#;
    let out = run_xml(
        r#"for $b in //book
           let $pub := if (empty($b/publisher)) then <publisher/> else $b/publisher
           for $d in xqa:cube(($pub, $b/year))
           group by $d into $group
           nest $b/price into $prices
           return <result>{count($prices)}|{avg($prices)}</result>"#,
        xml,
    );
    // Overall group: 3 books avg 20. Publisher groups: MK (2 books),
    // empty publisher (1). Year groups: 1993 (2), 1994 (1). Pairs:
    // (MK,1993), (MK,1994), (empty,1993).
    assert!(out.contains("<result>3|20</result>"), "{out}");
    assert!(out.contains("<result>2|15</result>"), "MK group: {out}");
    assert!(out.contains("<result>2|20</result>"), "1993 group: {out}");
    // Subset groups: {} -> 1; {publisher} -> MK, empty -> 2;
    // {year} -> 1993, 1994 -> 2; {publisher,year} -> 3. Total 8.
    let groups = out.matches("<result>").count();
    assert_eq!(groups, 8, "{out}");
}

#[test]
fn group_by_complex_node_keys() {
    // Grouping on whole elements uses structural deep-equal.
    let out = run(
        r#"for $x in (<a><b>1</b></a>, <a><b>1</b></a>, <a><b>2</b></a>)
           group by $x into $k
           nest 1 into $ones
           return count($ones)"#,
    );
    assert_eq!(out, "2 1");
}

#[test]
fn multiple_group_by_in_one_flwor_is_rejected() {
    // §3.5: only one group by clause per FLWOR.
    let engine = Engine::new();
    let err = engine
        .compile("for $b in (1,2) group by $b into $k group by $k into $j return $j")
        .unwrap_err();
    // Parses as: the second 'group' is not a valid clause keyword here,
    // so it is a syntax error.
    assert_eq!(err.code(), ErrorCode::XPST0003);
}

#[test]
fn using_function_with_wrong_result_type_errors() {
    let engine = Engine::new();
    let q = engine
        .compile(
            "declare function local:bad($a as item()*, $b as item()*) as xs:boolean { true() }; \
             for $x in (1,2) group by $x into $k using local:bad nest $x into $xs return count($xs)",
        )
        .unwrap();
    let doc = parse_document("<x/>").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    // local:bad says everything is equal -> one group of 2
    let out = q.run(&ctx).unwrap();
    assert_eq!(serialize_sequence(&out), "2");
}

#[test]
fn empty_input_produces_no_groups() {
    let out = run_xml(
        "for $b in //nothing group by $b into $k nest $b into $bs return $k",
        "<empty/>",
    );
    assert_eq!(out, "");
}

#[test]
fn where_before_group_by_filters_tuples_first() {
    let out = run("for $v in (1, 2, 3, 4, 5, 6)
         where $v mod 2 = 0
         group by $v mod 4 into $k
         nest $v into $vs
         order by $k
         return <g>{$k}:{count($vs)}</g>");
    // evens: 2,4,6 -> keys 2,0,2
    assert_eq!(out, "<g>0:1</g><g>2:2</g>");
}
