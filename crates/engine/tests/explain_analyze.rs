//! Golden tests for `explain analyze` output.
//!
//! Profiled runs use the deterministic [`TickClock`], so every timing
//! in the rendered text depends only on how many times the pipeline
//! read the clock — stable across machines and optimization levels.
//! Regenerate the golden files with `UPDATE_GOLDEN=1 cargo test`.

use std::collections::BTreeSet;
use std::sync::Arc;

use xqa_engine::{
    DynamicContext, Engine, EngineOptions, JoinMode, OpKind, PreparedQuery, QueryProfile, TickClock,
};

/// 1ms per clock read: large enough that rendered times are round.
const TICK_NANOS: u64 = 1_000_000;

/// A paper-shaped aggregation: grouping with a pre-group filter and a
/// bounded rank, exercising ForScan / CountBind / LetBind / Filter /
/// GroupConsume / OrderBy(limit) / ReturnAt in one pipeline.
const GROUP_TOPK_QUERY: &str = "(for $x in 1 to 50 \
     count $c \
     let $m := $x mod 5 \
     where $c le 40 \
     group by $m into $k \
     nest $x into $xs \
     order by count($xs) descending, number($k) \
     return at $r <g r=\"{$r}\">{$k}:{count($xs)}</g>)[position() le 3]";

/// A tumbling window, exercising the remaining WindowScan operator.
const WINDOW_QUERY: &str = "for tumbling window $w in (1 to 20) \
     start at $s when $s mod 5 = 1 \
     return <w>{sum($w)}</w>";

/// A joinable nested FLWOR, exercising the HashJoin operator (needs
/// `JoinMode::Hash` — the default `auto` keeps it nested without
/// catalog statistics).
const JOIN_QUERY: &str = "for $x in 1 to 8 \
     let $m := for $y in (2, 4, 6) where $y = $x return $y \
     return <j>{$x}:{count($m)}</j>";

fn engine_for(query: &str) -> Engine {
    if query == JOIN_QUERY {
        Engine::with_options(EngineOptions {
            join: JoinMode::Hash,
            ..Default::default()
        })
    } else {
        Engine::new()
    }
}

fn profiled_run(query: &str) -> (PreparedQuery, QueryProfile) {
    let engine = engine_for(query);
    let plan = engine.compile(query).expect("compiles");
    let mut ctx = DynamicContext::new();
    ctx.set_clock(Arc::new(TickClock::new(TICK_NANOS)));
    ctx.enable_profiling();
    plan.run(&ctx).expect("runs");
    let profile = ctx.take_profile().expect("profiling was enabled");
    (plan, profile)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\nrun with UPDATE_GOLDEN=1 to (re)create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "explain analyze drifted from golden {name}\nrun with UPDATE_GOLDEN=1 to regenerate"
    );
}

#[test]
fn group_topk_matches_golden() {
    let (plan, profile) = profiled_run(GROUP_TOPK_QUERY);
    assert_matches_golden(
        "explain_analyze_group_topk.txt",
        &plan.explain_analyze(&profile),
    );
}

#[test]
fn window_matches_golden() {
    let (plan, profile) = profiled_run(WINDOW_QUERY);
    assert_matches_golden(
        "explain_analyze_window.txt",
        &plan.explain_analyze(&profile),
    );
}

#[test]
fn join_matches_golden() {
    let (plan, profile) = profiled_run(JOIN_QUERY);
    assert_matches_golden("explain_analyze_join.txt", &plan.explain_analyze(&profile));
}

/// The three golden queries exercise every pipeline operator kind.
#[test]
fn golden_queries_cover_every_op_kind() {
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    for query in [GROUP_TOPK_QUERY, WINDOW_QUERY, JOIN_QUERY] {
        let (_, profile) = profiled_run(query);
        for pipeline in &profile.pipelines {
            for op in &pipeline.ops {
                seen.insert(op.kind.as_str());
            }
        }
    }
    let all: BTreeSet<&'static str> = OpKind::ALL.iter().map(|k| k.as_str()).collect();
    assert_eq!(seen, all, "an operator kind is missing from the goldens");
}

/// GroupConsume and OrderBy are the only operators allowed to report
/// materialization, and the tuple flow must chain: each operator's
/// tuples_in equals its upstream's tuples_out.
#[test]
fn profiles_report_materialization_and_tuple_flow_consistently() {
    for query in [GROUP_TOPK_QUERY, WINDOW_QUERY, JOIN_QUERY] {
        let (_, profile) = profiled_run(query);
        for pipeline in &profile.pipelines {
            for pair in pipeline.ops.windows(2) {
                assert_eq!(
                    pair[1].tuples_in,
                    pair[0].tuples_out,
                    "tuple flow broken between {} and {}",
                    pair[0].kind.as_str(),
                    pair[1].kind.as_str()
                );
            }
            for op in &pipeline.ops {
                let allowed = matches!(op.kind, OpKind::GroupConsume | OpKind::OrderBy);
                assert!(
                    allowed || !op.materializes(),
                    "{} must not materialize",
                    op.kind.as_str()
                );
            }
        }
    }
}

/// The JSON form carries the same per-operator numbers as the text.
#[test]
fn profile_json_names_every_operator() {
    let (_, profile) = profiled_run(GROUP_TOPK_QUERY);
    let json = profile.to_json();
    for op in [
        "ForScan",
        "CountBind",
        "LetBind",
        "Filter",
        "GroupConsume",
        "OrderBy",
        "ReturnAt",
    ] {
        assert!(
            json.contains(&format!("\"op\":\"{op}\"")),
            "{op} missing:\n{json}"
        );
    }
    assert!(json.contains("\"tuples_in\""), "{json}");
    assert!(json.contains("\"time_ns\""), "{json}");
}
