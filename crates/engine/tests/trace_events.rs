//! Trace-event tests: compilation through a traced engine emits
//! rewrite-fired events exactly when the rewrites apply.

use std::sync::Arc;

use xqa_engine::{Engine, TickClock, TracePhase, TraceRing, TraceSink, Tracer};

fn traced_compile(query: &str) -> Vec<(TracePhase, String)> {
    let ring = Arc::new(TraceRing::new(64));
    let tracer = Tracer::new(
        7,
        Arc::new(TickClock::new(1_000)),
        Arc::clone(&ring) as Arc<dyn TraceSink>,
    );
    Engine::new()
        .compile_traced(query, Some(&tracer))
        .expect("compiles");
    ring.drain()
        .into_iter()
        .map(|e| (e.phase, e.detail))
        .collect()
}

fn rewrite_events(events: &[(TracePhase, String)]) -> Vec<&str> {
    events
        .iter()
        .filter(|(phase, _)| *phase == TracePhase::RewriteFired)
        .map(|(_, detail)| detail.as_str())
        .collect()
}

#[test]
fn every_compile_emits_parse_then_compile() {
    let events = traced_compile("1 + 1");
    assert_eq!(events.first().map(|(p, _)| *p), Some(TracePhase::Parse));
    assert_eq!(events.last().map(|(p, _)| *p), Some(TracePhase::Compile));
    assert!(events.last().unwrap().1.contains("streaming pipeline"));
}

#[test]
fn topk_pushdown_fires_exactly_when_a_positional_bound_exists() {
    // Bounded rank query: the pushdown applies and says where.
    let events = traced_compile(
        "(for $x in 1 to 100 order by $x descending return at $r <v>{$r}</v>)[position() le 5]",
    );
    let fired = rewrite_events(&events);
    assert!(
        fired
            .iter()
            .any(|d| d.starts_with("topk-pushdown:") && d.contains("5-tuple heap")),
        "missing topk event in {fired:?}"
    );
    assert!(
        fired.iter().any(|d| d.contains("in query body")),
        "missing location in {fired:?}"
    );

    // Unbounded order-by: nothing to push down, no event.
    let events = traced_compile("for $x in 1 to 100 order by $x descending return $x");
    assert!(
        rewrite_events(&events)
            .iter()
            .all(|d| !d.starts_with("topk-pushdown:")),
        "topk-pushdown must not fire without a bound"
    );
}

#[test]
fn path_fusion_fires_exactly_on_descendant_steps() {
    let events = traced_compile("for $v in //item return $v");
    let fired = rewrite_events(&events);
    assert!(
        fired
            .iter()
            .any(|d| d.starts_with("path-fusion:") && d.contains("in query body")),
        "missing fusion event in {fired:?}"
    );

    // Child-only steps leave nothing to fuse.
    let events = traced_compile("for $v in /root/item return $v");
    assert!(
        rewrite_events(&events)
            .iter()
            .all(|d| !d.starts_with("path-fusion:")),
        "path-fusion must not fire on child-only paths"
    );
}

#[test]
fn rewrites_in_functions_and_globals_name_their_location() {
    let events = traced_compile(
        "declare variable $g := count(//a); \
         declare function local:f() { count(//b) }; \
         local:f() + $g",
    );
    let fired = rewrite_events(&events);
    assert!(
        fired.iter().any(|d| d.contains("global $g")),
        "missing global location in {fired:?}"
    );
    assert!(
        fired.iter().any(|d| d.contains("function local:f#0")),
        "missing function location in {fired:?}"
    );
}

#[test]
fn events_are_stamped_with_query_id_and_monotone_timestamps() {
    let ring = Arc::new(TraceRing::new(64));
    let tracer = Tracer::new(
        42,
        Arc::new(TickClock::new(1_000)),
        Arc::clone(&ring) as Arc<dyn TraceSink>,
    );
    Engine::new()
        .compile_traced("for $v in //item return $v", Some(&tracer))
        .expect("compiles");
    let events = ring.drain();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.query_id == 42));
    assert!(
        events.windows(2).all(|w| w[0].ts_nanos < w[1].ts_nanos),
        "timestamps must increase"
    );
}
