//! XQuery 3.0 window clauses (`for tumbling|sliding window`) and the
//! `count` clause — the standardized descendants of the paper's
//! moving-window motivation (§3.4.1) and output-numbering proposal (§4).

use xqa_engine::{DynamicContext, Engine};
use xqa_xdm::ErrorCode;
use xqa_xmlparse::{parse_document, serialize_sequence};

fn run(query: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile {query:?}: {e}"));
    let doc = parse_document("<empty/>").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run {query:?}: {e}"));
    serialize_sequence(&result)
}

// ---- tumbling windows -------------------------------------------------

#[test]
fn tumbling_fixed_size_by_position() {
    // Classic fixed-size batches of 3.
    let out = run("for tumbling window $w in (1 to 10) \
         start at $s when $s mod 3 = 1 \
         return <w>{sum($w)}</w>");
    // windows: (1,2,3) (4,5,6) (7,8,9) (10)
    assert_eq!(out, "<w>6</w><w>15</w><w>24</w><w>10</w>");
}

#[test]
fn tumbling_with_end_condition() {
    let out = run("for tumbling window $w in (2, 4, 6, 1, 3, 8, 10, 5) \
         start $s when $s mod 2 = 0 \
         end $e when $e mod 2 = 1 \
         return <w>{$w}</w>");
    // starts at 2 (even); ends at first odd (1): window 2 4 6 1.
    // next start at 8; ends at 5: window 8 10 5.
    assert_eq!(out, "<w>2 4 6 1</w><w>8 10 5</w>");
}

#[test]
fn tumbling_only_end_drops_unclosed_windows() {
    let base = "for tumbling window $w in (2, 4, 1, 6, 8) \
                start $s when $s mod 2 = 0 END $e when $e mod 2 = 1 \
                return <w>{$w}</w>";
    // Without `only`: the trailing window (6, 8) closes at sequence end.
    let lenient = run(&base.replace("END", "end"));
    assert_eq!(lenient, "<w>2 4 1</w><w>6 8</w>");
    // With `only end`: it is dropped.
    let strict = run(&base.replace("END", "only end"));
    assert_eq!(strict, "<w>2 4 1</w>");
}

#[test]
fn tumbling_windows_partition_input_when_start_is_true() {
    // start when true() => every item begins a window => singletons.
    let out = run("for tumbling window $w in (\"a\", \"b\", \"c\") \
         start when true() \
         return <w>{$w}</w>");
    assert_eq!(out, "<w>a</w><w>b</w><w>c</w>");
}

#[test]
fn tumbling_skips_items_before_first_start() {
    let out = run("for tumbling window $w in (1, 3, 4, 5, 6) \
         start $s when $s mod 2 = 0 \
         return <w>{$w}</w>");
    // 1, 3 precede the first start; windows: (4,5) then (6).
    assert_eq!(out, "<w>4 5</w><w>6</w>");
}

// ---- sliding windows ---------------------------------------------------

#[test]
fn sliding_fixed_width_windows() {
    let out = run("for sliding window $w in (1 to 6) \
         start at $s when true() \
         end at $e when $e - $s = 2 \
         return <w>{sum($w)}</w>");
    // windows of width 3 starting at every position: (1,2,3) (2,3,4)
    // (3,4,5) (4,5,6), then (5,6) and (6) close at the sequence end.
    assert_eq!(out, "<w>6</w><w>9</w><w>12</w><w>15</w><w>11</w><w>6</w>");
}

#[test]
fn sliding_only_end_keeps_full_windows() {
    let out = run("for sliding window $w in (1 to 6) \
         start at $s when true() \
         only end at $e when $e - $s = 2 \
         return <w>{sum($w)}</w>");
    assert_eq!(out, "<w>6</w><w>9</w><w>12</w><w>15</w>");
}

#[test]
fn sliding_requires_end_condition() {
    let engine = Engine::new();
    let err = engine
        .compile("for sliding window $w in (1 to 3) start when true() return $w")
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::XPST0003);
    assert!(err.to_string().contains("end condition"), "{err}");
}

// ---- window condition variables ----------------------------------------

#[test]
fn boundary_item_previous_next_variables() {
    let out = run("for tumbling window $w in (10, 20, 30, 40) \
         start $first at $i previous $prev next $nxt when $i mod 2 = 1 \
         return <w first=\"{$first}\" i=\"{$i}\" prev=\"{$prev}\" next=\"{$nxt}\">{count($w)}</w>");
    assert_eq!(
        out,
        "<w first=\"10\" i=\"1\" prev=\"\" next=\"20\">2</w>\
         <w first=\"30\" i=\"3\" prev=\"20\" next=\"40\">2</w>"
    );
}

#[test]
fn end_condition_sees_start_variables() {
    // Windows that end when the value doubles the starting value.
    let out = run("for tumbling window $w in (2, 3, 4, 5, 10, 3, 7) \
         start $s when true() \
         end $e when $e >= 2 * $s \
         return <w>{$w}</w>");
    // Start at 2, end at 4: (2,3,4). Start at 5, end at 10: (5,10).
    // Start at 3, end at 7: (3,7).
    assert_eq!(out, "<w>2 3 4</w><w>5 10</w><w>3 7</w>");
}

#[test]
fn window_vars_remain_in_scope_for_later_clauses() {
    let out = run("for tumbling window $w in (1 to 9) \
         start $s at $i when $i mod 3 = 1 \
         let $total := sum($w) \
         where $total > 10 \
         order by $total descending \
         return <w start=\"{$s}\">{$total}</w>");
    assert_eq!(out, "<w start=\"7\">24</w><w start=\"4\">15</w>");
}

#[test]
fn windows_over_nodes_from_documents() {
    // Sessionizing sales: new window whenever the region changes.
    let engine = Engine::new();
    let doc = parse_document(
        "<sales>\
         <sale><region>W</region><amount>1</amount></sale>\
         <sale><region>W</region><amount>2</amount></sale>\
         <sale><region>E</region><amount>3</amount></sale>\
         <sale><region>W</region><amount>4</amount></sale>\
         </sales>",
    )
    .unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let q = engine
        .compile(
            "for tumbling window $run in //sale \
             start $s previous $p when empty($p) or string($s/region) != string($p/region) \
             return <run region=\"{$run[1]/region}\">{sum($run/amount)}</run>",
        )
        .unwrap();
    let out = serialize_sequence(&q.run(&ctx).unwrap());
    assert_eq!(
        out,
        "<run region=\"W\">3</run><run region=\"E\">3</run><run region=\"W\">4</run>"
    );
}

#[test]
fn empty_binding_sequence_yields_no_windows() {
    assert_eq!(
        run("for tumbling window $w in () start when true() return <w/>"),
        ""
    );
}

#[test]
fn moving_average_via_sliding_window_matches_q8_formulation() {
    // The paper's Q8 intent in 3.0 syntax: average of each 3-sale window.
    let sliding = run("for sliding window $w in (4, 8, 15, 16, 23, 42) \
         start at $s when true() \
         only end at $e when $e - $s = 2 \
         return avg($w)");
    let nested = run("let $v := (4, 8, 15, 16, 23, 42) \
         return for $x at $i in $v \
                return (if ($i <= count($v) - 2) \
                        then avg(for $y at $j in $v \
                                 where $j >= $i and $j <= $i + 2 return $y) \
                        else ())");
    assert_eq!(sliding, nested);
}

// ---- the count clause ----------------------------------------------------

#[test]
fn count_clause_numbers_tuples() {
    assert_eq!(
        run("for $x in (\"a\", \"b\", \"c\") count $i return concat($i, $x)"),
        "1a 2b 3c"
    );
}

#[test]
fn count_interacts_with_where() {
    // count *before* the where keeps the original input numbering for
    // the surviving tuples.
    assert_eq!(
        run("for $x in (10, 20, 30, 40) count $i where $x > 15 return ($i, $x)"),
        "2 20 3 30 4 40"
    );
    // Numbering the *filtered* stream takes a nested FLWOR under the
    // paper's strict clause order.
    assert_eq!(
        run(
            "for $x in (for $y in (10, 20, 30, 40) where $y > 15 return $y) \
             count $i return ($i, $x)"
        ),
        "1 20 2 30 3 40"
    );
}

#[test]
fn count_vs_return_at_ordering_difference() {
    // `count` numbers the pre-sort stream; `return at` numbers output.
    let count_version =
        run("for $x in (30, 10, 20) count $i order by $x return concat($i, \":\", $x)");
    assert_eq!(count_version, "2:10 3:20 1:30");
    let at_version = run("for $x in (30, 10, 20) order by $x return at $i concat($i, \":\", $x)");
    assert_eq!(at_version, "1:10 2:20 3:30");
}

#[test]
fn count_works_with_group_by_pipeline() {
    // Number the groups in first-seen order.
    let out = run("for $x in (\"b\", \"a\", \"b\", \"c\", \"a\") \
         group by $x into $k \
         count $i \
         return concat($i, \"=\", $k)");
    assert_eq!(out, "1=b 2=a 3=c");
}
