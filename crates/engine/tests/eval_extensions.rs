//! Tests for features beyond the paper's minimum: `castable as`,
//! context instants, diagnostics, codepoint utilities, and the `xqa:`
//! windowed-aggregation extensions.

use xqa_engine::{DynamicContext, Engine};
use xqa_xmlparse::{parse_document, serialize_sequence};

fn run(query: &str) -> String {
    let engine = Engine::new();
    let compiled = engine
        .compile(query)
        .unwrap_or_else(|e| panic!("compile {query:?}: {e}"));
    let doc = parse_document("<empty/>").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let result = compiled
        .run(&ctx)
        .unwrap_or_else(|e| panic!("run {query:?}: {e}"));
    serialize_sequence(&result)
}

#[test]
fn castable_as() {
    assert_eq!(run("\"42\" castable as xs:integer"), "true");
    assert_eq!(run("\"abc\" castable as xs:integer"), "false");
    assert_eq!(run("\"2004-01-31\" castable as xs:date"), "true");
    assert_eq!(run("\"2004-13-31\" castable as xs:date"), "false");
    assert_eq!(run("() castable as xs:integer"), "false");
    assert_eq!(run("() castable as xs:integer?"), "true");
    assert_eq!(run("(1, 2) castable as xs:integer"), "false");
    // combined with conditional logic, the idiomatic validation pattern
    assert_eq!(
        run("for $v in (\"5\", \"x\", \"7\") \
             return if ($v castable as xs:integer) \
                    then xs:integer($v) else ()"),
        "5 7"
    );
}

#[test]
fn current_datetime_is_fixed_and_stable() {
    // Deterministic default, stable within a query.
    assert_eq!(run("current-dateTime()"), "2005-06-14T09:00:00Z");
    assert_eq!(run("current-date()"), "2005-06-14Z");
    assert_eq!(run("current-dateTime() eq current-dateTime()"), "true");
    assert_eq!(run("year-from-dateTime(current-dateTime())"), "2005");
}

#[test]
fn current_datetime_override() {
    let engine = Engine::new();
    let doc = parse_document("<x/>").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    ctx.set_current_datetime(xqa_xdm::DateTime::parse("1999-12-31T23:59:59Z").unwrap());
    let q = engine.compile("string(current-dateTime())").unwrap();
    assert_eq!(
        q.run(&ctx).unwrap()[0].string_value(),
        "1999-12-31T23:59:59Z"
    );
}

#[test]
fn trace_passes_value_through() {
    assert_eq!(run("trace((1, 2, 3), \"label\")"), "1 2 3");
}

#[test]
fn compare_function() {
    assert_eq!(run("compare(\"a\", \"b\")"), "-1");
    assert_eq!(run("compare(\"b\", \"a\")"), "1");
    assert_eq!(run("compare(\"a\", \"a\")"), "0");
    assert_eq!(run("compare((), \"a\")"), "");
}

#[test]
fn codepoint_functions() {
    assert_eq!(run("string-to-codepoints(\"AB\")"), "65 66");
    assert_eq!(run("codepoints-to-string((104, 105))"), "hi");
    assert_eq!(
        run("codepoints-to-string(string-to-codepoints(\"round trip\"))"),
        "round trip"
    );
    assert_eq!(run("string-to-codepoints(\"\")"), "");
}

#[test]
fn moving_sum_basic() {
    assert_eq!(run("xqa:moving-sum((1, 2, 3, 4, 5), 2)"), "1 3 5 7 9");
    assert_eq!(run("xqa:moving-sum((1, 2, 3), 10)"), "1 3 6");
    assert_eq!(run("xqa:moving-sum((), 3)"), "");
    assert_eq!(run("xqa:moving-sum((5), 1)"), "5");
}

#[test]
fn moving_avg_basic() {
    assert_eq!(run("xqa:moving-avg((2, 4, 6, 8), 2)"), "2 3 5 7");
    assert_eq!(run("xqa:moving-avg((10, 20), 5)"), "10 15");
}

#[test]
fn moving_window_errors() {
    let engine = Engine::new();
    let doc = parse_document("<x/>").unwrap();
    let mut ctx = DynamicContext::new();
    ctx.set_context_document(&doc);
    let q = engine.compile("xqa:moving-sum((1,2), 0)").unwrap();
    assert!(q.run(&ctx).is_err(), "zero window");
    let q = engine.compile("xqa:moving-sum((\"a\"), 2)").unwrap();
    assert!(q.run(&ctx).is_err(), "non-numeric values");
}

#[test]
fn moving_sum_equals_q8_style_window() {
    // The O(n) extension must agree with the nested-iteration (paper
    // Q8) formulation of "sum of this + previous 2 sales".
    let q8 = run("let $vals := (3, 1, 4, 1, 5, 9, 2, 6) \
         return for $v at $i in $vals \
                return sum(for $w at $j in $vals \
                           where $j > $i - 3 and $j <= $i return $w)");
    let ext = run("xqa:moving-sum((3, 1, 4, 1, 5, 9, 2, 6), 3)");
    assert_eq!(q8, ext);
}

#[test]
fn moving_sum_over_ordered_nest() {
    // The intended use: windowed totals over a `nest ... order by`.
    let out = run(
        "for $s in (<s><r>W</r><v>5</v></s>, <s><r>W</r><v>1</v></s>, <s><r>W</r><v>3</v></s>)
         group by $s/r into $region
         nest $s/v order by number($s/v) into $vs
         return xqa:moving-sum($vs, 2)",
    );
    // sorted vs: 1 3 5 -> windows: 1, 4, 8
    assert_eq!(out, "1 4 8");
}
