//! `repro` — regenerate the paper's evaluation artifacts.
//!
//! ```text
//! repro table1                 verify the Table 1 query pairs
//! repro chart [--sizes A,B,C] [--runs N] [--svg FILE]
//!                              the Section-6 chart: t(Q)/t(Qgb) per
//!                              group count, one series per input size;
//!                              --svg also draws the figure
//! repro ablation               the DESIGN.md ablation measurements
//! repro topk [--sizes A,B,C]   streaming top-k heap vs a full sort
//!                              (pushdown disabled) on rank queries
//! repro all                    everything (default)
//! ```

use std::time::Instant;
use xqa::{DynamicContext, Engine, EngineOptions};
use xqa_bench::{measure_point, q_query, qgb_query, Dataset, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let sizes = parse_list_flag(&args, "--sizes").unwrap_or_else(|| vec![8_000, 16_000, 32_000]);
    let runs = parse_flag(&args, "--runs").unwrap_or(3);
    let svg_path = parse_string_flag(&args, "--svg");
    match command {
        "table1" => table1(),
        "chart" => chart(&sizes, runs, svg_path.as_deref()),
        "ablation" => ablation(),
        "topk" => topk(&sizes),
        "all" => {
            table1();
            chart(&sizes, runs, svg_path.as_deref());
            ablation();
            topk(&sizes);
        }
        other => {
            eprintln!("unknown command {other:?}; expected table1|chart|ablation|topk|all");
            std::process::exit(2);
        }
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_string_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_list_flag(args: &[String], name: &str) -> Option<Vec<usize>> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|p| p.trim().parse().ok()).collect())
}

/// Table 1: print both templates and verify they compute identical
/// groups on a small collection.
fn table1() {
    println!("== Table 1: query templates with and without explicit group by ==\n");
    let one = &EXPERIMENTS[0];
    let two = &EXPERIMENTS[3];
    println!("-- group by one element ({}) --", one.keys[0]);
    println!("Qgb: {}", qgb_query(one.keys));
    println!("Q:   {}\n", q_query(one.keys));
    println!(
        "-- group by two elements ({}, {}) --",
        two.keys[0], two.keys[1]
    );
    println!("Qgb: {}", qgb_query(two.keys));
    println!("Q:   {}\n", q_query(two.keys));

    let dataset = Dataset::generate(2_000);
    let ctx = dataset.context();
    let engine = Engine::new();
    for e in EXPERIMENTS {
        let qgb = engine.compile(&qgb_query(e.keys)).expect("Qgb compiles");
        let q = engine.compile(&q_query(e.keys)).expect("Q compiles");
        let qgb_sorted = sorted_result(&qgb, &ctx);
        let q_sorted = sorted_result(&q, &ctx);
        let equal = qgb_sorted == q_sorted;
        println!(
            "{}: keys={:?} groups={} results-identical={}",
            e.id,
            e.keys,
            qgb_sorted.len(),
            equal
        );
        assert!(equal, "{}: Q and Qgb disagree", e.id);
    }
    println!();
}

/// Normalized result rows for the equivalence check. The templates are
/// equivalent per the paper's reading, not byte-identical: `Qgb` binds
/// `$a` to the grouping *element* while `Q` binds the atomized value,
/// so we compare whitespace-normalized string values of each row.
fn sorted_result(query: &xqa::PreparedQuery, ctx: &DynamicContext) -> Vec<String> {
    let result = query.run(ctx).expect("query runs");
    let mut rows: Vec<String> = result
        .iter()
        .map(|item| {
            let text = item.string_value();
            text.split_whitespace().collect::<Vec<_>>().concat()
        })
        .collect();
    rows.sort();
    rows
}

/// The Section-6 chart: Y = t(Q)/t(Qgb), X = number of groups, one
/// series per collection size.
fn chart(sizes: &[usize], runs: usize, svg_path: Option<&str>) {
    println!("== Section 6 chart: t(Q) / t(Qgb) vs number of groups ==");
    println!("   (paper: ratio grows with group count; series per input size)\n");
    println!(
        "{:<6} {:<26} {:>7} {:>10} {:>12} {:>12} {:>8}",
        "query", "grouping key(s)", "groups", "lineitems", "t(Q)", "t(Qgb)", "ratio"
    );
    let mut series: Vec<(usize, Vec<(usize, f64)>)> = Vec::new();
    for &size in sizes {
        let dataset = Dataset::generate(size);
        let mut points = Vec::new();
        for e in EXPERIMENTS {
            let point = measure_point(e, &dataset, runs).expect("experiment runs");
            println!(
                "{:<6} {:<26} {:>7} {:>10} {:>12.2?} {:>12.2?} {:>8.1}",
                e.id,
                format!("{:?}", e.keys),
                point.observed_groups,
                size,
                point.t_q,
                point.t_qgb,
                point.ratio()
            );
            points.push((point.observed_groups, point.ratio()));
        }
        series.push((size, points));
        println!();
    }
    // The chart, as the paper draws it.
    println!("chart series (x = groups, y = t(Q)/t(Qgb)):");
    for (size, points) in &series {
        let line: Vec<String> = points
            .iter()
            .map(|(g, r)| format!("({g}, {r:.1})"))
            .collect();
        println!("  {size} lineitems: {}", line.join(" "));
    }
    println!();
    if let Some(path) = svg_path {
        let svg_series: Vec<xqa_bench::svg::Series> = series
            .iter()
            .map(|(size, points)| xqa_bench::svg::Series {
                label: format!("{size} lineitems"),
                points: points.iter().map(|&(g, r)| (g as f64, r)).collect(),
            })
            .collect();
        let config = xqa_bench::svg::ChartConfig {
            title: "t(Q) / t(Qgb) vs number of groups (paper Section 6)".to_string(),
            x_label: "number of groups".to_string(),
            y_label: "execution time ratio t(Q)/t(Qgb)".to_string(),
            ..Default::default()
        };
        let svg = xqa_bench::svg::render_line_chart(&config, &svg_series);
        match std::fs::write(path, svg) {
            Ok(()) => println!("chart written to {path}\n"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

/// DESIGN.md ablations: detection rewrite, custom-equality grouping,
/// nest ordering strategy.
fn ablation() {
    println!("== Ablations ==\n");
    let dataset = Dataset::generate(8_000);
    let ctx = dataset.context();

    // 1. Implicit group-by detection on the Q form.
    let q_src = q_query(&["shipmode"]);
    let plain = Engine::new();
    let detecting = Engine::with_options(EngineOptions {
        detect_implicit_groupby: true,
        ..Default::default()
    });
    let t_q = bench_compiled(&plain.compile(&q_src).unwrap(), &ctx);
    let rewritten = detecting.compile(&q_src).unwrap();
    assert!(rewritten
        .applied_rewrites()
        .iter()
        .any(|r| r.contains("implicit group-by")));
    let t_rw = bench_compiled(&rewritten, &ctx);
    let t_qgb = bench_compiled(&plain.compile(&qgb_query(&["shipmode"])).unwrap(), &ctx);
    println!("1. implicit-group-by detection (shipmode, 8K lineitems):");
    println!("   Q naive           {t_q:>10.2?}");
    println!("   Q + rewrite       {t_rw:>10.2?}   (detection recovers the explicit plan)");
    println!("   Qgb explicit      {t_qgb:>10.2?}\n");

    // 2. Hash-indexed deep-equal grouping vs. the linear `using` path.
    let hash_path = "for $litem in //order/lineitem \
                     group by $litem/shipmode into $a \
                     nest $litem into $items return count($items)";
    let using_path = "declare function local:eq($a as item()*, $b as item()*) as xs:boolean \
                      { deep-equal($a, $b) }; \
                      for $litem in //order/lineitem \
                      group by $litem/shipmode into $a using local:eq \
                      nest $litem into $items return count($items)";
    let t_hash = bench_compiled(&plain.compile(hash_path).unwrap(), &ctx);
    let t_using = bench_compiled(&plain.compile(using_path).unwrap(), &ctx);
    println!("2. grouping equality implementation (7 groups, 8K lineitems):");
    println!("   hash-indexed deep-equal   {t_hash:>10.2?}");
    println!(
        "   linear `using` comparator {t_using:>10.2?}   ({}x; why `using` costs more)\n",
        ratio(t_using, t_hash)
    );

    // 3. nest order-by (per-group sort) vs. globally pre-sorted input.
    let nest_sort = "for $li in //order/lineitem \
                     group by $li/shipmode into $m \
                     nest $li/shipdate order by string($li/shipdate) into $ds \
                     return count($ds)";
    let pre_sort =
        "for $li in (for $x in //order/lineitem order by string($x/shipdate) return $x) \
                    group by $li/shipmode into $m \
                    nest $li/shipdate into $ds \
                    return count($ds)";
    let t_nest = bench_compiled(&plain.compile(nest_sort).unwrap(), &ctx);
    let t_pre = bench_compiled(&plain.compile(pre_sort).unwrap(), &ctx);
    println!("3. windowed nests (order within groups, 8K lineitems):");
    println!("   nest ... order by (sort per group) {t_nest:>10.2?}");
    println!("   global pre-sort + plain nest       {t_pre:>10.2?}\n");
}

/// Top-k rank queries (`return at $rank` under `[position() le 10]`):
/// the bounded heap vs the same pipeline with the rewrite disabled.
fn topk(sizes: &[usize]) {
    const K: usize = 10;
    println!("== Top-k rank: streaming heap vs full sort (k = {K}) ==\n");
    println!("intra-query threads: {}", xqa::resolve_threads(0));
    let query = format!(
        "(for $li in //order/lineitem \
          order by number($li/extendedprice) descending \
          return at $r <top rank=\"{{$r}}\">{{data($li/partkey)}}</top>)\
         [position() le {K}]"
    );
    println!("query: {query}\n");
    let streaming = Engine::new();
    let full_sort = Engine::with_options(EngineOptions {
        topk_pushdown: false,
        ..Default::default()
    });
    println!(
        "{:<10} {:>14} {:>16} {:>9}",
        "lineitems", "heap", "full_sort", "speedup"
    );
    for &size in sizes {
        let dataset = Dataset::generate(size);
        let ctx = dataset.context();
        let fast = streaming.compile(&query).expect("compiles");
        assert!(
            fast.applied_rewrites()
                .iter()
                .any(|r| r.contains("top-k pushdown")),
            "top-k pushdown must fire"
        );
        let slow = full_sort.compile(&query).expect("compiles");
        let a = xqa::serialize_sequence(&fast.run(&ctx).expect("runs"));
        let b = xqa::serialize_sequence(&slow.run(&ctx).expect("runs"));
        assert_eq!(a, b, "paths disagree at {size} lineitems");
        let t_fast = bench_compiled(&fast, &ctx);
        let t_slow = bench_compiled(&slow, &ctx);
        println!(
            "{size:<10} {t_fast:>14.2?} {t_slow:>16.2?} {:>8}x",
            ratio(t_slow, t_fast)
        );
    }
    println!();

    // One profiled run at the largest size shows where the time goes:
    // the per-operator rows that back the speedup claim above.
    if let Some(&size) = sizes.last() {
        let dataset = Dataset::generate(size);
        let mut ctx = dataset.context();
        ctx.enable_profiling();
        let fast = streaming.compile(&query).expect("compiles");
        fast.run(&ctx).expect("profiled run");
        if let Some(profile) = ctx.take_profile() {
            println!("per-operator profile ({size} lineitems, streaming):");
            print!("{}", fast.explain_analyze(&profile));
            println!(
                "expression evaluation: {} compiled-program evals, {} tree-walker fallbacks",
                profile.expr_compiled, profile.expr_fallback
            );
            println!();
        }
    }
}

fn bench_compiled(query: &xqa::PreparedQuery, ctx: &DynamicContext) -> std::time::Duration {
    // Reuse the library helper indirectly: warm up + mean of 3.
    query.run(ctx).expect("warm-up run");
    let start = Instant::now();
    let runs = 3;
    for _ in 0..runs {
        query.run(ctx).expect("bench run");
    }
    start.elapsed() / runs
}

fn ratio(a: std::time::Duration, b: std::time::Duration) -> String {
    format!("{:.1}", a.as_secs_f64() / b.as_secs_f64())
}
