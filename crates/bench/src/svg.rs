//! A tiny self-contained SVG line-chart writer, used by `repro chart
//! --svg` to draw the paper's Section-6 figure (t(Q)/t(Qgb) against the
//! number of groups, one polyline per collection size).

use std::fmt::Write;

/// One series: a label plus (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "8000 lineitems").
    pub label: String,
    /// Points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in px.
    pub width: u32,
    /// Canvas height in px.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 720,
            height: 480,
        }
    }
}

const COLORS: [&str; 5] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"];
const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 160.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 56.0;

/// Render the chart to an SVG string.
pub fn render_line_chart(config: &ChartConfig, series: &[Series]) -> String {
    let w = config.width as f64;
    let h = config.height as f64;
    let plot_w = w - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = h - MARGIN_TOP - MARGIN_BOTTOM;

    let all_points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let (x_min, x_max) = axis_bounds(all_points.iter().map(|p| p.0), 0.0);
    let (y_min, y_max) = axis_bounds(all_points.iter().map(|p| p.1), 0.0);

    let to_px = |x: f64, y: f64| -> (f64, f64) {
        let px = MARGIN_LEFT + (x - x_min) / (x_max - x_min).max(1e-9) * plot_w;
        let py = MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min).max(1e-9) * plot_h;
        (px, py)
    };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
    );
    let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Title.
    let _ = write!(
        svg,
        r#"<text x="{}" y="28" text-anchor="middle" font-size="16">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        escape(&config.title)
    );
    // Axes.
    let (x0, y0) = (MARGIN_LEFT, MARGIN_TOP + plot_h);
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
        MARGIN_LEFT + plot_w
    );
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{MARGIN_TOP}" stroke="black"/>"#
    );
    // Ticks and gridlines (5 intervals each axis).
    for i in 0..=5 {
        let fx = x_min + (x_max - x_min) * i as f64 / 5.0;
        let (px, _) = to_px(fx, y_min);
        let _ = write!(
            svg,
            r##"<line x1="{px}" y1="{y0}" x2="{px}" y2="{MARGIN_TOP}" stroke="#eeeeee"/>"##
        );
        let _ = write!(
            svg,
            r#"<text x="{px}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
            y0 + 18.0,
            format_tick(fx)
        );
        let fy = y_min + (y_max - y_min) * i as f64 / 5.0;
        let (_, py) = to_px(x_min, fy);
        let _ = write!(
            svg,
            r##"<line x1="{x0}" y1="{py}" x2="{}" y2="{py}" stroke="#eeeeee"/>"##,
            MARGIN_LEFT + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="end" font-size="11">{}</text>"#,
            x0 - 6.0,
            py + 4.0,
            format_tick(fy)
        );
    }
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="13">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        h - 12.0,
        escape(&config.x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" font-size="13" transform="rotate(-90 16 {})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        escape(&config.y_label)
    );
    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| {
                let (px, py) = to_px(x, y);
                format!("{px:.1},{py:.1}")
            })
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        );
        for &(x, y) in &s.points {
            let (px, py) = to_px(x, y);
            let _ = write!(
                svg,
                r#"<circle cx="{px:.1}" cy="{py:.1}" r="3.5" fill="{color}"/>"#
            );
        }
        // Legend entry.
        let ly = MARGIN_TOP + 16.0 + i as f64 * 20.0;
        let lx = MARGIN_LEFT + plot_w + 12.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 20.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
            lx + 26.0,
            ly + 4.0,
            escape(&s.label)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// (min, max) with a little headroom; `floor` pins the lower bound.
fn axis_bounds(values: impl Iterator<Item = f64>, floor: f64) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    let min = min.min(floor);
    let span = (max - min).max(1e-9);
    (min, max + span * 0.05)
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 100.0 || v.fract().abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.1}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                label: "8000 lineitems".into(),
                points: vec![(4.0, 4.0), (7.0, 6.8), (50.0, 40.9)],
            },
            Series {
                label: "32000 lineitems".into(),
                points: vec![(4.0, 4.0), (7.0, 5.3), (50.0, 50.6)],
            },
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_line_chart(
            &ChartConfig {
                title: "t(Q)/t(Qgb) vs groups".into(),
                x_label: "number of groups".into(),
                y_label: "ratio".into(),
                ..Default::default()
            },
            &sample(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("8000 lineitems"));
        // Parses as XML with our own parser (integration sanity).
        xqa::parse_document(&svg).expect("SVG is well-formed XML");
    }

    #[test]
    fn escape_in_labels() {
        let svg = render_line_chart(
            &ChartConfig {
                title: "a < b & c".into(),
                ..Default::default()
            },
            &sample(),
        );
        assert!(svg.contains("a &lt; b &amp; c"));
        xqa::parse_document(&svg).expect("escaped SVG parses");
    }

    #[test]
    fn empty_series_do_not_panic() {
        let svg = render_line_chart(&ChartConfig::default(), &[]);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(4.0), "4");
        assert_eq!(format_tick(6.8), "6.8");
        assert_eq!(format_tick(150.2), "150");
    }
}
