//! Minimal std-only benchmark harness (Criterion-style reporting
//! without the dependency, so the workspace builds offline).
//!
//! Each `[[bench]]` target sets `harness = false` and drives this from
//! a plain `main`. Timing protocol: one untimed warm-up, then enough
//! iterations to fill a fixed measurement budget (at least
//! [`MIN_ITERS`]), reporting mean and minimum wall-clock time.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum timed iterations per benchmark.
pub const MIN_ITERS: u32 = 5;

/// Per-benchmark measurement budget.
const BUDGET: Duration = Duration::from_millis(500);

/// A named group of benchmarks, printed as a table.
pub struct Harness {
    group: String,
    /// Intra-query thread count recorded with each measurement, so
    /// `BENCH_*.json` figures are comparable across parallelism levels.
    threads: usize,
    /// Annotations attached to the next recorded measurement.
    pending: Vec<(String, String)>,
}

impl Harness {
    /// Start a group (prints its header). Measurements record the
    /// resolved default intra-query thread count until
    /// [`Harness::set_threads`] overrides it.
    pub fn group(name: &str) -> Harness {
        println!("\n== {name} ==");
        Harness {
            group: name.to_string(),
            threads: xqa::resolve_threads(0),
            pending: Vec::new(),
        }
    }

    /// Record subsequent measurements as running with `threads`
    /// intra-query threads (for benches that sweep the thread count).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Attach an already-serialized JSON value under `key` to the next
    /// recorded measurement (e.g. copy-counter summaries in the seq
    /// bench). Annotations are drained by the next `bench*` call.
    pub fn annotate(&mut self, key: &str, json: String) {
        self.pending.push((key.to_string(), json));
    }

    /// Run one benchmark: warm up, estimate, then measure. Returns the
    /// mean wall-clock time per iteration.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) -> Duration {
        self.bench_with_profile(name, None, f)
    }

    /// Push a derived, untimed record (e.g. a ratio computed from two
    /// measured means). Pending [`Harness::annotate`] values attach to
    /// it, so figures like `speedup_vs_walk` land in `BENCH_*.json` as
    /// their own rows.
    pub fn record_derived(&mut self, name: &str) {
        println!("{:<40} (derived)", format!("{}/{name}", self.group));
        RECORDS.lock().unwrap().push(Record {
            group: self.group.clone(),
            name: name.to_string(),
            mean_ns: 0,
            min_ns: 0,
            iters: 0,
            threads: self.threads,
            profile_json: None,
            extra: std::mem::take(&mut self.pending),
        });
    }

    /// Like [`Harness::bench`], but attaches a pre-serialized operator
    /// profile (a JSON object, e.g. [`xqa::QueryProfile::to_json`])
    /// to the machine-readable record, so `BENCH_*.json` carries
    /// per-operator tuple/time numbers next to the wall-clock figures.
    pub fn bench_with_profile<F: FnMut()>(
        &mut self,
        name: &str,
        profile_json: Option<String>,
        mut f: F,
    ) -> Duration {
        // Warm-up doubles as the iteration-count estimate.
        let start = Instant::now();
        f();
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = ((BUDGET.as_secs_f64() / once.as_secs_f64()) as u32).clamp(MIN_ITERS, 10_000);

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            f();
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        let mean = total / iters;
        println!(
            "{:<40} mean {:>12?}  min {:>12?}  ({iters} iters)",
            format!("{}/{name}", self.group),
            mean,
            min
        );
        RECORDS.lock().unwrap().push(Record {
            group: self.group.clone(),
            name: name.to_string(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            iters,
            threads: self.threads,
            profile_json,
            extra: std::mem::take(&mut self.pending),
        });
        mean
    }
}

/// One measured benchmark, kept for machine-readable reporting.
struct Record {
    group: String,
    name: String,
    mean_ns: u128,
    min_ns: u128,
    iters: u32,
    /// Intra-query thread count the measurement ran with.
    threads: usize,
    /// Pre-serialized JSON object with per-operator profile numbers.
    profile_json: Option<String>,
    /// Extra pre-serialized `(key, json)` annotations.
    extra: Vec<(String, String)>,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// The repository root: the nearest ancestor of this crate that holds
/// the workspace `Cargo.lock`. Bench targets run with the *package*
/// directory as CWD, so relative `BENCH_JSON` paths would otherwise
/// land in `crates/bench/` where nothing picks them up.
fn repo_root() -> std::path::PathBuf {
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    while !dir.join("Cargo.lock").exists() {
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
    dir
}

/// Write every benchmark measured so far as a JSON array. Relative
/// paths resolve against the repository root, so
/// `BENCH_JSON=BENCH_seq.json` lands next to the committed trajectory
/// files regardless of the bench target's working directory.
pub fn write_json(path: &str) -> std::io::Result<()> {
    let path = {
        let p = std::path::Path::new(path);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            repo_root().join(p)
        }
    };
    let records = RECORDS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {}, \
             \"min_ns\": {}, \"iters\": {}, \"threads\": {}",
            escape(&r.group),
            escape(&r.name),
            r.mean_ns,
            r.min_ns,
            r.iters,
            r.threads
        ));
        if let Some(profile) = &r.profile_json {
            // Already-valid JSON, inserted verbatim.
            out.push_str(&format!(", \"profile\": {profile}"));
        }
        for (key, json) in &r.extra {
            out.push_str(&format!(", \"{}\": {json}", escape(key)));
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    std::fs::write(path, out)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Format a throughput figure given bytes processed per iteration.
pub fn mibps(bytes: usize, per_iter: Duration) -> f64 {
    bytes as f64 / (1024.0 * 1024.0) / per_iter.as_secs_f64().max(1e-12)
}
