//! Benchmark harness for the paper's evaluation (Section 6).
//!
//! [`EXPERIMENTS`] lists the six query pairs of the paper's chart —
//! grouping lineitems by `shipinstruct` (4 groups), `shipmode` (7),
//! `tax` (9), `(shipinstruct, shipmode)` (28), `(shipinstruct, tax)`
//! (36) and `quantity` (50). [`qgb_query`]/[`q_query`] instantiate the
//! exact Table 1 templates. The `repro` binary regenerates the paper's
//! table and chart; the std-only benches ([`harness`]) cover the same queries plus
//! the design-choice ablations from DESIGN.md.

pub mod harness;
pub mod svg;

use std::sync::Arc;
use std::time::{Duration, Instant};
use xqa::{DynamicContext, Engine, EngineResult};
use xqa_workload::{generate_orders, OrdersConfig};

/// One experiment of the paper's chart: a set of grouping elements and
/// the group count it produces on the TPC-H-flavoured domains.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// The paper's query id (Q1..Q6 in Section 6 numbering).
    pub id: &'static str,
    /// The lineitem child element(s) being grouped on.
    pub keys: &'static [&'static str],
    /// The number of groups this experiment produces (the X axis).
    pub groups: usize,
}

/// The six experiments of the Section-6 chart, ordered by group count.
pub const EXPERIMENTS: [Experiment; 6] = [
    Experiment {
        id: "Q1",
        keys: &["shipinstruct"],
        groups: 4,
    },
    Experiment {
        id: "Q2",
        keys: &["shipmode"],
        groups: 7,
    },
    Experiment {
        id: "Q3",
        keys: &["tax"],
        groups: 9,
    },
    Experiment {
        id: "Q4",
        keys: &["shipinstruct", "shipmode"],
        groups: 28,
    },
    Experiment {
        id: "Q5",
        keys: &["shipinstruct", "tax"],
        groups: 36,
    },
    Experiment {
        id: "Q6",
        keys: &["quantity"],
        groups: 50,
    },
];

/// Table 1, right template — *with* explicit group by (`Qgb`).
pub fn qgb_query(keys: &[&str]) -> String {
    match keys {
        [a] => format!(
            "for $litem in //order/lineitem \
             group by $litem/{a} into $a \
             nest $litem into $items \
             return <r> {{$a, count($items)}} </r>"
        ),
        [a, b] => format!(
            "for $litem in //order/lineitem \
             group by $litem/{a} into $a, $litem/{b} into $b \
             nest $litem into $items \
             return <r> {{$a, $b, count($items)}} </r>"
        ),
        _ => panic!("templates cover one or two grouping elements"),
    }
}

/// Table 1, left template — *without* explicit group by (`Q`).
pub fn q_query(keys: &[&str]) -> String {
    match keys {
        [a] => format!(
            "for $a in distinct-values(//order/lineitem/{a}) \
             let $items := for $i in //order/lineitem where $i/{a} = $a return $i \
             return <r>{{$a, count($items)}}</r>"
        ),
        [a, b] => format!(
            "for $a in distinct-values(//order/lineitem/{a}), \
                 $b in distinct-values(//order/lineitem/{b}) \
             let $items := for $i in //order/lineitem \
                           where $i/{a} = $a and $i/{b} = $b return $i \
             where exists($items) \
             return <r>{{$a, $b, count($items)}}</r>"
        ),
        _ => panic!("templates cover one or two grouping elements"),
    }
}

/// A prepared dataset: the order collection sized to about
/// `lineitems` total lineitems.
pub struct Dataset {
    /// The document.
    pub doc: Arc<xqa::xdm::Document>,
    /// Approximate lineitem count requested.
    pub lineitems: usize,
}

impl Dataset {
    /// Generate the collection.
    pub fn generate(lineitems: usize) -> Dataset {
        Dataset {
            doc: generate_orders(&OrdersConfig::with_total_lineitems(lineitems)),
            lineitems,
        }
    }

    /// A context with this dataset as the input document.
    pub fn context(&self) -> DynamicContext {
        let mut ctx = DynamicContext::new();
        ctx.set_context_document(&self.doc);
        ctx
    }
}

/// Timing result of one query over one dataset.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Mean wall-clock time over the runs.
    pub mean: Duration,
    /// Number of items in the result (sanity check).
    pub result_items: usize,
}

/// Compile `query`, run it `runs` times against `ctx`, and report the
/// mean (the paper averages over runs).
pub fn time_query(query: &str, ctx: &DynamicContext, runs: usize) -> EngineResult<Timing> {
    let engine = Engine::new();
    let compiled = engine.compile(query)?;
    // One warm-up run (not timed).
    let result = compiled.run(ctx)?;
    let result_items = result.len();
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        let out = compiled.run(ctx)?;
        total += start.elapsed();
        assert_eq!(out.len(), result_items, "non-deterministic result size");
    }
    Ok(Timing {
        mean: total / runs as u32,
        result_items,
    })
}

/// One row of the chart reproduction.
#[derive(Debug, Clone, Copy)]
pub struct ChartPoint {
    /// The experiment.
    pub experiment: Experiment,
    /// Dataset size (lineitems).
    pub lineitems: usize,
    /// Mean time of the query *without* group by.
    pub t_q: Duration,
    /// Mean time of the query *with* group by.
    pub t_qgb: Duration,
    /// Observed group count.
    pub observed_groups: usize,
}

impl ChartPoint {
    /// The paper's Y axis: `t(Q) / t(Qgb)`.
    pub fn ratio(&self) -> f64 {
        self.t_q.as_secs_f64() / self.t_qgb.as_secs_f64()
    }
}

/// Measure one chart point.
pub fn measure_point(
    experiment: Experiment,
    dataset: &Dataset,
    runs: usize,
) -> EngineResult<ChartPoint> {
    let ctx = dataset.context();
    let qgb = time_query(&qgb_query(experiment.keys), &ctx, runs)?;
    let q = time_query(&q_query(experiment.keys), &ctx, runs)?;
    assert_eq!(
        q.result_items, qgb.result_items,
        "{}: Q and Qgb disagree on the number of groups",
        experiment.id
    );
    Ok(ChartPoint {
        experiment,
        lineitems: dataset.lineitems,
        t_q: q.mean,
        t_qgb: qgb.mean,
        observed_groups: qgb.result_items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_compile() {
        let engine = Engine::new();
        for e in EXPERIMENTS {
            engine.compile(&qgb_query(e.keys)).expect("Qgb compiles");
            engine.compile(&q_query(e.keys)).expect("Q compiles");
        }
    }

    #[test]
    fn group_counts_match_the_paper_domains() {
        let dataset = Dataset::generate(2_000);
        let ctx = dataset.context();
        for e in EXPERIMENTS {
            let timing = time_query(&qgb_query(e.keys), &ctx, 1).unwrap();
            assert_eq!(
                timing.result_items, e.groups,
                "{} should produce {} groups",
                e.id, e.groups
            );
        }
    }

    #[test]
    fn q_and_qgb_agree_on_groups() {
        let dataset = Dataset::generate(1_000);
        let point = measure_point(EXPERIMENTS[0], &dataset, 1).unwrap();
        assert_eq!(point.observed_groups, 4);
        assert!(point.t_q > Duration::ZERO && point.t_qgb > Duration::ZERO);
    }
}
