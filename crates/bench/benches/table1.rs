//! Bench for Table 1: each query pair (with / without explicit
//! group by), one bench per experiment.
//!
//! Sizes are kept modest so `cargo bench` completes quickly; the
//! `repro` binary runs the full-size sweep (8K–32K lineitems).

use xqa::Engine;
use xqa_bench::harness::Harness;
use xqa_bench::{q_query, qgb_query, Dataset, EXPERIMENTS};

fn main() {
    let engine = Engine::new();
    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();

    let mut group = Harness::group("table1");
    for e in EXPERIMENTS {
        let qgb = engine.compile(&qgb_query(e.keys)).expect("Qgb compiles");
        group.bench(&format!("Qgb/{}", e.id), || {
            qgb.run(&ctx).expect("Qgb runs");
        });
    }
    // The Q side is O(groups x scan), so bench only the cheap half of
    // the sweep here (the expensive points are the repro binary's job).
    for e in EXPERIMENTS.iter().take(3) {
        let q = engine.compile(&q_query(e.keys)).expect("Q compiles");
        group.bench(&format!("Q/{}", e.id), || {
            q.run(&ctx).expect("Q runs");
        });
    }
}
