//! Criterion bench for Table 1: each query pair (with / without
//! explicit group by), one bench per experiment.
//!
//! Sizes are kept modest so `cargo bench` completes quickly; the
//! `repro` binary runs the full-size sweep (8K–32K lineitems).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xqa::Engine;
use xqa_bench::{q_query, qgb_query, Dataset, EXPERIMENTS};

fn bench_table1(c: &mut Criterion) {
    let engine = Engine::new();
    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();

    let mut group = c.benchmark_group("table1");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for e in EXPERIMENTS {
        let qgb = engine.compile(&qgb_query(e.keys)).expect("Qgb compiles");
        group.bench_with_input(BenchmarkId::new("Qgb", e.id), &qgb, |b, q| {
            b.iter(|| q.run(&ctx).expect("Qgb runs"));
        });
    }
    // The Q side is O(groups x scan), so bench only the cheap half of
    // the sweep here (the expensive points are the repro binary's job).
    for e in EXPERIMENTS.iter().take(3) {
        let q = engine.compile(&q_query(e.keys)).expect("Q compiles");
        group.bench_with_input(BenchmarkId::new("Q", e.id), &q, |b, qq| {
            b.iter(|| qq.run(&ctx).expect("Q runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
