//! Morsel-parallel scaling over the Section-6 purchase-order workload:
//! the same queries at 1/2/4/8 intra-query threads, asserting
//! byte-identical output against the serial baseline and reporting
//! speedup-vs-threads.
//!
//! Every record in `BENCH_parallel.json` carries its `threads` count,
//! so the scaling curve is reconstructible from the artifact alone.
//! Speedups are whatever the host actually delivers: on a single-core
//! machine they hover around 1.0x (the morsel machinery then measures
//! its own overhead, which is the honest number to watch there).

use std::time::Duration;
use xqa::{serialize_sequence, Engine, EngineOptions};
use xqa_bench::harness::Harness;
use xqa_bench::Dataset;

/// 100k lineitems; `partkey` is drawn from 1..200_000, so the grouping
/// query aggregates into tens of thousands of distinct groups.
const LINEITEMS: usize = 100_000;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn engine(threads: usize) -> Engine {
    Engine::with_options(EngineOptions {
        threads,
        ..Default::default()
    })
}

/// Bench one query across the thread sweep; parallel output must be
/// byte-identical to the threads=1 run.
fn bench_scaling(label: &str, query: &str, dataset: &Dataset) {
    let mut group = Harness::group(&format!("parallel/{label}"));
    let ctx = dataset.context();
    let mut baseline: Option<(String, Duration)> = None;
    let mut means: Vec<(usize, Duration)> = Vec::new();
    for threads in THREAD_COUNTS {
        let compiled = engine(threads).compile(query).expect("compiles");
        let out = serialize_sequence(&compiled.run(&ctx).expect("runs"));
        match &baseline {
            None => baseline = Some((out, Duration::ZERO)),
            Some((expected, _)) => assert_eq!(
                expected, &out,
                "threads={threads} output differs from serial for {label}"
            ),
        }
        group.set_threads(threads);
        let mean = group.bench(&format!("threads={threads}"), || {
            compiled.run(&ctx).expect("runs");
        });
        means.push((threads, mean));
    }
    let serial = means[0].1;
    let summary: Vec<String> = means
        .iter()
        .map(|(n, mean)| {
            let speedup = serial.as_secs_f64() / mean.as_secs_f64().max(f64::MIN_POSITIVE);
            format!("{n}t={speedup:.2}x")
        })
        .collect();
    println!("speedup vs 1 thread ({label}): {}", summary.join(" "));
}

fn main() {
    let dataset = Dataset::generate(LINEITEMS);

    // Parallel hash grouping: partitioned per-worker tables merged by
    // key (first-appearance order, no order by needed for determinism).
    bench_scaling(
        "group_partkey",
        "for $li in //order/lineitem \
         group by $li/partkey into $k \
         nest $li/quantity into $qs \
         return <g>{data($k)}:{count($qs)}</g>",
        &dataset,
    );

    // Merged top-k: per-worker bounded heaps, k survivors merged.
    bench_scaling(
        "topk_price",
        "(for $li in //order/lineitem \
          order by number($li/extendedprice) descending \
          return at $r <top rank=\"{$r}\">{data($li/partkey)}</top>)\
         [position() le 10]",
        &dataset,
    );

    // Fully streamed chain: morsel fragments concatenated in order.
    bench_scaling(
        "filter_scan",
        "for $li in //order/lineitem \
         where number($li/quantity) ge 45 \
         return <r>{data($li/partkey)}</r>",
        &dataset,
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        xqa_bench::harness::write_json(&path).expect("write bench json");
    }
}
