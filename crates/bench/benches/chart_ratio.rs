//! Criterion bench behind the Section-6 chart: the Qgb side across
//! input sizes (scaling behaviour), plus the Q side at the smallest
//! size for the ratio's numerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqa::Engine;
use xqa_bench::{q_query, qgb_query, Dataset, EXPERIMENTS};

fn bench_scaling(c: &mut Criterion) {
    let engine = Engine::new();
    let mut group = c.benchmark_group("chart/qgb_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for lineitems in [2_000usize, 4_000, 8_000] {
        let dataset = Dataset::generate(lineitems);
        let ctx = dataset.context();
        let compiled = engine.compile(&qgb_query(&["shipmode"])).expect("compiles");
        group.throughput(Throughput::Elements(lineitems as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(lineitems),
            &compiled,
            |b, q| {
                b.iter(|| q.run(&ctx).expect("runs"));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("chart/q_numerator");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    let dataset = Dataset::generate(2_000);
    let ctx = dataset.context();
    for e in EXPERIMENTS {
        let compiled = engine.compile(&q_query(e.keys)).expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}-{}groups", e.id, e.groups)),
            &compiled,
            |b, q| {
                b.iter(|| q.run(&ctx).expect("runs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
