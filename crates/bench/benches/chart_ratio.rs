//! Bench behind the Section-6 chart: the Qgb side across input sizes
//! (scaling behaviour), plus the Q side at the smallest size for the
//! ratio's numerator.

use xqa::Engine;
use xqa_bench::harness::Harness;
use xqa_bench::{q_query, qgb_query, Dataset, EXPERIMENTS};

fn main() {
    let engine = Engine::new();
    let mut group = Harness::group("chart/qgb_scaling");
    for lineitems in [2_000usize, 4_000, 8_000] {
        let dataset = Dataset::generate(lineitems);
        let ctx = dataset.context();
        let compiled = engine.compile(&qgb_query(&["shipmode"])).expect("compiles");
        group.bench(&lineitems.to_string(), || {
            compiled.run(&ctx).expect("runs");
        });
    }

    let mut group = Harness::group("chart/q_numerator");
    let dataset = Dataset::generate(2_000);
    let ctx = dataset.context();
    for e in EXPERIMENTS {
        let compiled = engine.compile(&q_query(e.keys)).expect("compiles");
        group.bench(&format!("{}-{}groups", e.id, e.groups), || {
            compiled.run(&ctx).expect("runs");
        });
    }
}
