//! Top-k rank benches: `return at $rank` under a positional bound, the
//! §4 headline use case. Measures the bounded-heap order-by (top-k
//! pushdown) against the same pipeline with the rewrite disabled (full
//! sort), over growing input sizes and growing group counts (k = 10).

use xqa::{serialize_sequence, Engine, EngineOptions};
use xqa_bench::harness::Harness;
use xqa_bench::Dataset;
use xqa_service::{FlightRecord, FlightRecorder};

const K: usize = 10;

/// Measure the flight recorder's per-query tax: depositing one
/// realistic record (pre-rendered stats + profile JSON, ring at
/// steady-state capacity) into an enabled recorder, minus the same
/// call against a disabled (capacity-0) one. Returns nanoseconds per
/// record.
fn recorder_tax_ns(profile_json: &str, query: &str) -> f64 {
    const RECORDS: u64 = 20_000;
    let make = |i: u64| FlightRecord {
        request_id: i.to_string(),
        fingerprint: Some(0x8486_d01b_7883_8283 ^ (i % 7)),
        query: query.to_string(),
        ok: true,
        error: None,
        cached_plan: i > 0,
        latency_us: 150 + i % 50,
        tuples: 1_000,
        worst_q_error: Some(1.0 + (i % 10) as f64 / 10.0),
        stats_json: Some("{\"tuples_produced\":1000}".to_string()),
        profile_json: Some(profile_json.to_string()),
        trace_json: "[]".to_string(),
        rewrites: vec!["topk-pushdown".to_string()],
        streamed: false,
    };
    let timed = |recorder: &FlightRecorder| {
        let start = std::time::Instant::now();
        for i in 0..RECORDS {
            recorder.record(make(i));
        }
        start.elapsed().as_nanos() as f64 / RECORDS as f64
    };
    let on = FlightRecorder::new(256);
    let off = FlightRecorder::new(0);
    // Warm both paths (fills the ring so eviction cost is included).
    timed(&on);
    timed(&off);
    (timed(&on) - timed(&off)).max(0.0)
}

/// Rank individual lineitems by price: n input tuples, k survivors.
fn rank_items_query(k: usize) -> String {
    format!(
        "(for $li in //order/lineitem \
          order by number($li/extendedprice) descending \
          return at $r <top rank=\"{{$r}}\">{{data($li/partkey)}}</top>)\
         [position() le {k}]"
    )
}

/// Rank groups by size: group-by feeds the bounded order-by.
fn rank_groups_query(key: &str, k: usize) -> String {
    format!(
        "(for $li in //order/lineitem \
          group by $li/{key} into $g \
          nest $li into $items \
          order by count($items) descending \
          return at $r <top rank=\"{{$r}}\">{{data($g)}}</top>)\
         [position() le {k}]"
    )
}

fn engines() -> (Engine, Engine) {
    let with_pushdown = Engine::new();
    let full_sort = Engine::with_options(EngineOptions {
        topk_pushdown: false,
        ..Default::default()
    });
    (with_pushdown, full_sort)
}

/// Compile under both plans, check byte-identical output, bench both.
fn bench_pair(group: &mut Harness, label: &str, query: &str, dataset: &Dataset) {
    let (with_pushdown, full_sort) = engines();
    let fast = with_pushdown.compile(query).expect("compiles");
    assert!(
        fast.applied_rewrites()
            .iter()
            .any(|r| r.contains("top-k pushdown")),
        "top-k pushdown must fire for {label}"
    );
    let slow = full_sort.compile(query).expect("compiles");
    let ctx = dataset.context();
    let a = serialize_sequence(&fast.run(&ctx).expect("runs"));
    let b = serialize_sequence(&slow.run(&ctx).expect("runs"));
    assert_eq!(a, b, "paths disagree for {label}");

    // One profiled run attaches per-operator tuple/time numbers to the
    // streaming record in BENCH_*.json (the timed loop stays unprofiled).
    let mut profiled = dataset.context();
    profiled.enable_profiling();
    fast.run(&profiled).expect("profiled run");
    let profile = profiled.take_profile().map(|p| p.to_json());

    let profile_json = profile.clone().unwrap_or_else(|| "{}".to_string());
    let mean = group.bench_with_profile(&format!("{label}/streaming_heap"), profile, || {
        fast.run(&ctx).expect("runs");
    });
    group.bench(&format!("{label}/full_sort"), || {
        slow.run(&ctx).expect("runs");
    });

    // The flight-recorder tax, stated next to the query it would ride
    // on: nanoseconds to deposit one record, and what fraction of this
    // query's mean that is. The service promises the recorder is cheap
    // enough to leave always-on; 2% of the smallest measured query is
    // the ceiling we hold it to.
    let tax_ns = recorder_tax_ns(&profile_json, query);
    let overhead_pct = 100.0 * tax_ns / mean.as_nanos() as f64;
    assert!(
        overhead_pct <= 2.0,
        "flight recorder tax {tax_ns:.0}ns is {overhead_pct:.2}% of {label} \
         (mean {mean:?}), above the 2% always-on budget"
    );
    group.annotate(
        "recorder_overhead",
        format!("{{\"record_ns\":{tax_ns:.0},\"pct_of_query\":{overhead_pct:.4}}}"),
    );
    group.record_derived(&format!("{label}/recorder_tax"));
}

fn main() {
    // Growing input size, fixed k: the heap's O(n log k) vs the full
    // sort's O(n log n) — and, dominating in practice, delta tuples vs
    // full-frame clones.
    let mut group = Harness::group("topk/rank_items");
    for lineitems in [2_000usize, 10_000, 20_000] {
        let dataset = Dataset::generate(lineitems);
        bench_pair(
            &mut group,
            &format!("n{lineitems}"),
            &rank_items_query(K),
            &dataset,
        );
    }

    // Growing group counts, fixed input: the breaker chain
    // GroupConsume -> OrderBy(limit) under the same bound.
    let mut group = Harness::group("topk/rank_groups");
    let dataset = Dataset::generate(10_000);
    for (key, groups) in [("shipinstruct", 4usize), ("shipmode", 7), ("quantity", 50)] {
        bench_pair(
            &mut group,
            &format!("{key}_g{groups}"),
            &rank_groups_query(key, K),
            &dataset,
        );
    }

    // CI uploads the machine-readable run as BENCH_pipeline.json.
    if let Ok(path) = std::env::var("BENCH_JSON") {
        xqa_bench::harness::write_json(&path).expect("write bench json");
        println!("\nbench records written to {path}");
    }
}
