//! Expression-evaluation benches: compiled bytecode programs against
//! the IR tree-walker they replace, over filter- and arithmetic-heavy
//! FLWORs at 10k–100k items.
//!
//! Two workloads, both byte-identical across evaluators by construction
//! (asserted in-bench before timing):
//!
//! - **comparison-heavy filter** — a `where` clause chaining value
//!   comparisons and modular arithmetic over every tuple: the
//!   type-specialized compare fast paths vs per-tuple tree dispatch;
//! - **arithmetic lets** — stacked `let` bindings of integer arithmetic
//!   feeding a final filter: register reuse vs per-node sequence
//!   allocation.
//!
//! Each size/workload pair emits `<label>/bytecode`, `<label>/tree` and
//! a derived `<label>/speedup` record carrying `speedup_vs_tree`; CI
//! enforces the ≥1.3x floor on the comparison-heavy rows.

use xqa::{serialize_sequence, DynamicContext, Engine, EngineOptions, ExprEvalMode};
use xqa_bench::harness::Harness;

/// Item counts for the `1 to N` sweeps.
const SIZES: [usize; 3] = [10_000, 50_000, 100_000];

/// Serial engines: one expression-evaluation mode apiece, threads
/// pinned to 1 so the measurement isolates per-tuple evaluation cost
/// from morsel scheduling.
fn engines() -> (Engine, Engine) {
    let bytecode = Engine::with_options(EngineOptions {
        expr_eval: ExprEvalMode::Bytecode,
        threads: 1,
        ..Default::default()
    });
    let tree = Engine::with_options(EngineOptions {
        expr_eval: ExprEvalMode::Tree,
        threads: 1,
        ..Default::default()
    });
    (bytecode, tree)
}

/// Compile under both evaluators, check the bytecode plan actually
/// lowered its clauses and that outputs are byte-identical, then time
/// both and record the speedup.
fn bench_pair(group: &mut Harness, label: &str, query: &str) {
    let (bytecode_engine, tree_engine) = engines();
    let compiled = bytecode_engine.compile(query).expect("compiles");
    assert!(
        compiled.explain().contains("[compiled]"),
        "bytecode plan must annotate compiled clauses for {label}:\n{}",
        compiled.explain()
    );
    let walked = tree_engine.compile(query).expect("compiles");
    assert!(
        !walked.explain().contains("[compiled]"),
        "tree plan must not annotate compiled clauses for {label}"
    );

    let ctx = DynamicContext::new();
    let evals_before = ctx.stats.snapshot().expr_compiled;
    let a = serialize_sequence(&compiled.run(&ctx).expect("runs"));
    assert!(
        ctx.stats.snapshot().expr_compiled > evals_before,
        "bytecode run must execute compiled programs for {label}"
    );
    let b = serialize_sequence(&walked.run(&ctx).expect("runs"));
    assert_eq!(a, b, "evaluators disagree for {label}");

    let bytecode_mean = group.bench(&format!("{label}/bytecode"), || {
        compiled.run(&ctx).expect("runs");
    });
    let tree_mean = group.bench(&format!("{label}/tree"), || {
        walked.run(&ctx).expect("runs");
    });
    let speedup = tree_mean.as_secs_f64() / bytecode_mean.as_secs_f64().max(1e-12);
    println!(
        "{:<40} speedup {speedup:>10.2}x",
        format!("{}/{label}", "exprs")
    );
    group.annotate("speedup_vs_tree", format!("{speedup:.3}"));
    group.record_derived(&format!("{label}/speedup"));
}

fn main() {
    // Chained comparisons and modular arithmetic over every tuple; the
    // clause mix keeps roughly a third of the input alive so the filter
    // itself (not output construction) dominates.
    let mut group = Harness::group("exprs/filter_compare");
    for n in SIZES {
        bench_pair(
            &mut group,
            &format!("n{n}"),
            &format!(
                "for $x in 1 to {n} \
                 where ($x ge 100) and ($x mod 7 = 3 or $x mod 11 = 4) \
                 return $x"
            ),
        );
    }

    // Stacked integer-arithmetic lets feeding a final filter: every
    // tuple runs three programs (two lets and a where).
    let mut group = Harness::group("exprs/arith_let");
    for n in SIZES {
        bench_pair(
            &mut group,
            &format!("n{n}"),
            &format!(
                "for $x in 1 to {n} \
                 let $y := $x * 3 + ($x mod 5) \
                 let $z := $y - $x * 2 \
                 where $z mod 9 = 1 \
                 return $z"
            ),
        );
    }

    // CI uploads the machine-readable run as BENCH_expr.json.
    if let Ok(path) = std::env::var("BENCH_JSON") {
        xqa_bench::harness::write_json(&path).expect("write bench json");
        println!("\nbench records written to {path}");
    }
}
