//! Storage-layer benches: indexed access paths against the tree walk
//! they replace, over the orders corpus at 10k–100k elements.
//!
//! Two workloads, both byte-identical across paths by construction
//! (asserted in-bench before timing):
//!
//! - **descendant scan** — `count(//lineitem)`: the element-postings
//!   lookup vs walking every node of the document;
//! - **value predicate** — `//lineitem[quantity = 7]` (numeric probe)
//!   and `//lineitem[shipmode = "AIR"]` (string probe): the typed-value
//!   index vs scan-and-compare, with the residual predicate re-checked
//!   on candidates either way.
//!
//! Each size/workload pair emits `<label>/index`, `<label>/walk` and a
//! derived `<label>/speedup` record carrying `speedup_vs_walk`; CI
//! enforces the ≥2x floor on the descendant-scan rows.

use std::sync::Arc;

use xqa::storage::CatalogStatistics;
use xqa::{serialize_sequence, AccessPathMode, DynamicContext, Engine, EngineOptions};
use xqa_bench::harness::Harness;
use xqa_bench::Dataset;

/// Orders sized to land the total element count in the 10k–100k range
/// (each lineitem contributes ~15 elements including order overhead).
const LINEITEMS: [usize; 3] = [700, 2_000, 7_000];

fn engines(stats: &Arc<CatalogStatistics>) -> (Engine, Engine) {
    let index = Engine::with_options(EngineOptions {
        access_path: AccessPathMode::Index,
        ..Default::default()
    })
    .with_statistics(Arc::clone(stats));
    let walk = Engine::with_options(EngineOptions {
        access_path: AccessPathMode::Walk,
        ..Default::default()
    })
    .with_statistics(Arc::clone(stats));
    (index, walk)
}

/// An indexed context plus the statistics its stores derive.
fn indexed_context(dataset: &Dataset) -> (DynamicContext, Arc<CatalogStatistics>) {
    let mut ctx = dataset.context();
    ctx.index_documents();
    let stats = Arc::new(CatalogStatistics::from_stores(
        ctx.stores().map(Arc::as_ref),
    ));
    (ctx, stats)
}

/// Compile under both access paths, check the index plan actually takes
/// the index and that outputs are byte-identical, then time both and
/// record the speedup.
fn bench_pair(
    group: &mut Harness,
    label: &str,
    query: &str,
    ctx: &DynamicContext,
    stats: &Arc<CatalogStatistics>,
) {
    let (index_engine, walk_engine) = engines(stats);
    let indexed = index_engine.compile(query).expect("compiles");
    assert!(
        indexed.explain().contains("[index scan"),
        "index plan must annotate an index scan for {label}:\n{}",
        indexed.explain()
    );
    let walked = walk_engine.compile(query).expect("compiles");
    assert!(
        !walked.explain().contains("[index scan"),
        "walk plan must not annotate index scans for {label}"
    );

    let hits_before = ctx.stats.snapshot().scan_index_hits;
    let a = serialize_sequence(&indexed.run(ctx).expect("runs"));
    assert!(
        ctx.stats.snapshot().scan_index_hits > hits_before,
        "index path must record hits for {label}"
    );
    let b = serialize_sequence(&walked.run(ctx).expect("runs"));
    assert_eq!(a, b, "access paths disagree for {label}");

    let index_mean = group.bench(&format!("{label}/index"), || {
        indexed.run(ctx).expect("runs");
    });
    let walk_mean = group.bench(&format!("{label}/walk"), || {
        walked.run(ctx).expect("runs");
    });
    let speedup = walk_mean.as_secs_f64() / index_mean.as_secs_f64().max(1e-12);
    println!(
        "{:<40} speedup {speedup:>10.2}x",
        format!("{}/{label}", "storage")
    );
    group.annotate("speedup_vs_walk", format!("{speedup:.3}"));
    group.record_derived(&format!("{label}/speedup"));
}

fn main() {
    let datasets: Vec<Dataset> = LINEITEMS.iter().map(|n| Dataset::generate(*n)).collect();

    // Postings lookup vs full-document walk.
    let mut group = Harness::group("storage/descendant_scan");
    for dataset in &datasets {
        let (ctx, stats) = indexed_context(dataset);
        bench_pair(
            &mut group,
            &format!("n{}", dataset.lineitems),
            "count(//lineitem)",
            &ctx,
            &stats,
        );
    }

    // Typed-value probes vs scan-and-compare. The numeric probe matches
    // ~1/50 lineitems (quantity is uniform over 1..=50), the string
    // probe ~1/7 (shipmode over 7 carriers).
    let mut group = Harness::group("storage/value_predicate");
    for dataset in &datasets {
        let (ctx, stats) = indexed_context(dataset);
        let label = format!("n{}", dataset.lineitems);
        bench_pair(
            &mut group,
            &format!("{label}/quantity_eq"),
            "count(//lineitem[quantity = 7])",
            &ctx,
            &stats,
        );
        bench_pair(
            &mut group,
            &format!("{label}/shipmode_eq"),
            "count(//lineitem[shipmode = \"AIR\"])",
            &ctx,
            &stats,
        );
    }

    // CI uploads the machine-readable run as BENCH_storage.json.
    if let Ok(path) = std::env::var("BENCH_JSON") {
        xqa_bench::harness::write_json(&path).expect("write bench json");
        println!("\nbench records written to {path}");
    }
}
