//! Microbenchmarks of the substrate layers: XML parsing throughput,
//! query compilation, path scans, element construction, and the
//! grouping operator in isolation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;
use xqa::{parse_document, serialize_node, DynamicContext, Engine};
use xqa_bench::Dataset;
use xqa_workload::{generate_sales, SalesConfig};

fn bench_xml_parse(c: &mut Criterion) {
    let dataset = Dataset::generate(2_000);
    let text = serialize_node(&dataset.doc.root());
    let mut group = c.benchmark_group("micro/xml");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| parse_document(&text).expect("parses"));
    });
    let doc = parse_document(&text).expect("parses");
    group.bench_function("serialize", |b| {
        b.iter(|| serialize_node(&doc.root()));
    });
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let engine = Engine::new();
    let query = r#"
        for $s in //sale
        group by $s/region into $region,
                 year-from-dateTime($s/timestamp) into $year
        nest $s order by $s/timestamp into $rs
        let $sum := sum($rs/(quantity * price))
        where $sum > 0
        order by $year, $region
        return at $rank
          <row rank="{$rank}">{$region, $year, $sum}</row>"#;
    let mut group = c.benchmark_group("micro/frontend");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.bench_function("parse_query", |b| {
        b.iter(|| xqa::frontend::parse_query(query).expect("parses"));
    });
    group.bench_function("compile_query", |b| {
        b.iter(|| engine.compile(query).expect("compiles"));
    });
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let engine = Engine::new();
    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();
    let mut group = c.benchmark_group("micro/operators");
    group.sample_size(10).measurement_time(Duration::from_secs(4));

    let scan = engine.compile("count(//order/lineitem)").expect("compiles");
    group.bench_function("descendant_scan", |b| b.iter(|| scan.run(&ctx).expect("runs")));

    let predicate = engine
        .compile("count(//order/lineitem[quantity > 25])")
        .expect("compiles");
    group.bench_function("predicate_filter", |b| b.iter(|| predicate.run(&ctx).expect("runs")));

    let aggregate = engine.compile("sum(//order/lineitem/quantity)").expect("compiles");
    group.bench_function("sum_aggregate", |b| b.iter(|| aggregate.run(&ctx).expect("runs")));

    let construct = engine
        .compile(
            "for $o in //order return <o k=\"{$o/orderkey}\">{$o/customer/name}</o>",
        )
        .expect("compiles");
    group.bench_function("construct_elements", |b| b.iter(|| construct.run(&ctx).expect("runs")));

    let sales = generate_sales(&SalesConfig { sales: 4_000, ..Default::default() });
    let mut sctx = DynamicContext::new();
    sctx.set_context_document(&sales);
    let window = engine
        .compile(
            "for $s in //sale \
             group by $s/region into $r \
             nest $s order by $s/timestamp into $rs \
             return count($rs)",
        )
        .expect("compiles");
    group.bench_function("group_nest_orderby", |b| b.iter(|| window.run(&sctx).expect("runs")));
    group.finish();
}

criterion_group!(benches, bench_xml_parse, bench_compile, bench_operators);
criterion_main!(benches);
