//! Microbenchmarks of the substrate layers: XML parsing throughput,
//! query compilation, path scans, element construction, and the
//! grouping operator in isolation.

use xqa::{parse_document, serialize_node, DynamicContext, Engine};
use xqa_bench::harness::Harness;
use xqa_bench::Dataset;
use xqa_workload::{generate_sales, SalesConfig};

fn main() {
    let dataset = Dataset::generate(2_000);
    let text = serialize_node(&dataset.doc.root());
    let mut group = Harness::group("micro/xml");
    group.bench(&format!("parse ({} bytes)", text.len()), || {
        parse_document(&text).expect("parses");
    });
    let doc = parse_document(&text).expect("parses");
    group.bench("serialize", || {
        serialize_node(&doc.root());
    });

    let engine = Engine::new();
    let query = r#"
        for $s in //sale
        group by $s/region into $region,
                 year-from-dateTime($s/timestamp) into $year
        nest $s order by $s/timestamp into $rs
        let $sum := sum($rs/(quantity * price))
        where $sum > 0
        order by $year, $region
        return at $rank
          <row rank="{$rank}">{$region, $year, $sum}</row>"#;
    let mut group = Harness::group("micro/frontend");
    group.bench("parse_query", || {
        xqa::frontend::parse_query(query).expect("parses");
    });
    group.bench("compile_query", || {
        engine.compile(query).expect("compiles");
    });

    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();
    let mut group = Harness::group("micro/operators");

    let scan = engine.compile("count(//order/lineitem)").expect("compiles");
    group.bench("descendant_scan", || {
        scan.run(&ctx).expect("runs");
    });

    let predicate = engine
        .compile("count(//order/lineitem[quantity > 25])")
        .expect("compiles");
    group.bench("predicate_filter", || {
        predicate.run(&ctx).expect("runs");
    });

    let aggregate = engine
        .compile("sum(//order/lineitem/quantity)")
        .expect("compiles");
    group.bench("sum_aggregate", || {
        aggregate.run(&ctx).expect("runs");
    });

    let construct = engine
        .compile("for $o in //order return <o k=\"{$o/orderkey}\">{$o/customer/name}</o>")
        .expect("compiles");
    group.bench("construct_elements", || {
        construct.run(&ctx).expect("runs");
    });

    let sales = generate_sales(&SalesConfig {
        sales: 4_000,
        ..Default::default()
    });
    let mut sctx = DynamicContext::new();
    sctx.set_context_document(&sales);
    let window = engine
        .compile(
            "for $s in //sale \
             group by $s/region into $r \
             nest $s order by $s/timestamp into $rs \
             return count($rs)",
        )
        .expect("compiles");
    group.bench("group_nest_orderby", || {
        window.run(&sctx).expect("runs");
    });
}
