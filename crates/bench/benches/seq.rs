//! Sequence-representation benches: grouping/nesting queries that used
//! to deep-copy item vectors on every `let` binding, tuple snapshot and
//! group-nest append, measured under the copy-on-write `Sequence`.
//!
//! Each record carries a `seq` summary next to the wall-clock figures:
//!
//! - `items_copied` — items cloned into newly allocated backing storage
//!   during one evaluation;
//! - `clones_shared` — items whose copy a shared `Many` clone avoided;
//! - `baseline_items_copied` — what the old `Vec<Item>` representation
//!   would have copied for the same run (every shared clone was a full
//!   copy there, so the baseline is the sum of the two counters);
//! - `reduction_pct` — the headline claim: how much of the baseline
//!   copying the sharing eliminated.
//!
//! Counter measurement runs at threads=1 so the recorded numbers are
//! deterministic; the timed loops run at the harness default.

use xqa::{Engine, EngineOptions};
use xqa_bench::harness::Harness;
use xqa_bench::Dataset;

/// The paper's central shape: group lineitems, nest the full items.
fn group_nest_query() -> &'static str {
    "for $li in //order/lineitem \
     group by $li/shipmode into $m \
     nest $li into $items \
     order by string($m) \
     return <g>{string($m)}:{count($items)}</g>"
}

/// Two keys, two nests: every group carries two accumulated sequences.
fn group_two_nests_query() -> &'static str {
    "for $li in //order/lineitem \
     group by $li/returnflag into $rf, $li/linestatus into $ls \
     nest $li/quantity into $qs \
     order by string($rf), string($ls) \
     return <g>{string($rf)}{string($ls)}|{count($qs)}|{sum(for $q in $qs return number($q))}</g>"
}

/// Post-group `let`/`where` re-bind the nested sequence repeatedly —
/// the slot-copy path that O(1) clones turn into refcount bumps.
fn group_rebind_query() -> &'static str {
    "for $li in //order/lineitem \
     group by $li/shipmode into $m \
     nest $li into $items \
     let $n := count($items) \
     let $again := $items \
     where $n ge 1 \
     order by $n descending, string($m) \
     return <g>{string($m)}:{count($again)}</g>"
}

/// One deterministic threads=1 run, returning the copy-counter deltas.
fn measure_counters(query: &str, dataset: &Dataset) -> (u64, u64) {
    let engine = Engine::with_options(EngineOptions {
        threads: 1,
        ..Default::default()
    });
    let plan = engine.compile(query).expect("compiles");
    let ctx = dataset.context();
    let before = ctx.stats.snapshot();
    plan.run(&ctx).expect("runs");
    let after = ctx.stats.snapshot();
    (
        after.seq_items_copied - before.seq_items_copied,
        after.seq_clones_shared - before.seq_clones_shared,
    )
}

fn bench_one(group: &mut Harness, label: &str, query: &str, dataset: &Dataset) {
    let (copied, shared) = measure_counters(query, dataset);
    let baseline = copied + shared;
    let reduction_pct = if baseline == 0 {
        0.0
    } else {
        100.0 * shared as f64 / baseline as f64
    };
    println!(
        "{label}: items_copied={copied} clones_shared={shared} \
         baseline_items_copied={baseline} reduction={reduction_pct:.1}%"
    );
    group.annotate(
        "seq",
        format!(
            "{{\"items_copied\": {copied}, \"clones_shared\": {shared}, \
             \"baseline_items_copied\": {baseline}, \"reduction_pct\": {reduction_pct:.1}}}"
        ),
    );
    let engine = Engine::new();
    let plan = engine.compile(query).expect("compiles");
    let ctx = dataset.context();
    group.bench(label, || {
        plan.run(&ctx).expect("runs");
    });
}

fn main() {
    let mut group = Harness::group("seq/group_nest");
    for lineitems in [2_000usize, 8_000, 16_000] {
        let dataset = Dataset::generate(lineitems);
        bench_one(
            &mut group,
            &format!("n{lineitems}"),
            group_nest_query(),
            &dataset,
        );
    }

    let dataset = Dataset::generate(8_000);
    let mut group = Harness::group("seq/group_shapes");
    bench_one(&mut group, "two_nests", group_two_nests_query(), &dataset);
    bench_one(&mut group, "rebind", group_rebind_query(), &dataset);

    if let Ok(path) = std::env::var("BENCH_JSON") {
        xqa_bench::harness::write_json(&path).expect("write bench json");
        println!("\nbench records written to {path}");
    }
}
