//! Ablation benches for the design choices DESIGN.md calls out:
//! 1. the implicit-group-by detection rewrite (Q naive vs rewritten vs
//!    explicit Qgb);
//! 2. hash-indexed deep-equal grouping vs the linear `using` comparator
//!    path;
//! 3. `nest ... order by` (sort per group) vs a global pre-sort.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xqa::{Engine, EngineOptions};
use xqa_bench::{q_query, qgb_query, Dataset};

fn bench_detection_rewrite(c: &mut Criterion) {
    let dataset = Dataset::generate(2_000);
    let ctx = dataset.context();
    let plain = Engine::new();
    let detecting = Engine::with_options(EngineOptions { detect_implicit_groupby: true, ..Default::default() });
    let q_src = q_query(&["shipmode"]);

    let naive = plain.compile(&q_src).expect("compiles");
    let rewritten = detecting.compile(&q_src).expect("compiles");
    assert_eq!(rewritten.applied_rewrites().len(), 1, "rewrite must fire");
    let explicit = plain.compile(&qgb_query(&["shipmode"])).expect("compiles");

    let mut group = c.benchmark_group("ablation/detection");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("q_naive", |b| b.iter(|| naive.run(&ctx).expect("runs")));
    group.bench_function("q_rewritten", |b| b.iter(|| rewritten.run(&ctx).expect("runs")));
    group.bench_function("qgb_explicit", |b| b.iter(|| explicit.run(&ctx).expect("runs")));
    group.finish();
}

fn bench_grouping_equality(c: &mut Criterion) {
    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();
    let engine = Engine::new();
    let hash = engine
        .compile(
            "for $litem in //order/lineitem \
             group by $litem/shipmode into $a \
             nest $litem into $items return count($items)",
        )
        .expect("compiles");
    let using = engine
        .compile(
            "declare function local:eq($a as item()*, $b as item()*) as xs:boolean \
             { deep-equal($a, $b) }; \
             for $litem in //order/lineitem \
             group by $litem/shipmode into $a using local:eq \
             nest $litem into $items return count($items)",
        )
        .expect("compiles");

    let mut group = c.benchmark_group("ablation/equality");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("hash_deep_equal", |b| b.iter(|| hash.run(&ctx).expect("runs")));
    group.bench_function("linear_using", |b| b.iter(|| using.run(&ctx).expect("runs")));
    group.finish();
}

fn bench_nest_ordering(c: &mut Criterion) {
    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();
    let engine = Engine::new();
    let nest_sort = engine
        .compile(
            "for $li in //order/lineitem \
             group by $li/shipmode into $m \
             nest $li/shipdate order by string($li/shipdate) into $ds \
             return count($ds)",
        )
        .expect("compiles");
    let pre_sort = engine
        .compile(
            "for $li in (for $x in //order/lineitem \
                         order by string($x/shipdate) return $x) \
             group by $li/shipmode into $m \
             nest $li/shipdate into $ds \
             return count($ds)",
        )
        .expect("compiles");

    let mut group = c.benchmark_group("ablation/nest_order");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("per_group_sort", |b| b.iter(|| nest_sort.run(&ctx).expect("runs")));
    group.bench_function("global_pre_sort", |b| b.iter(|| pre_sort.run(&ctx).expect("runs")));
    group.finish();
}

fn bench_moving_windows(c: &mut Criterion) {
    // The paper's Q8 moving window, three ways: nested iteration (the
    // paper's only option), an XQuery 3.0 sliding window, and the O(n)
    // xqa:moving-sum extension.
    let engine = Engine::new();
    let nested = engine
        .compile(
            "let $v := (1 to 500) \
             return for $x at $i in $v \
                    return sum(for $y at $j in $v \
                               where $j > $i - 10 and $j <= $i return $y)",
        )
        .expect("compiles");
    let window_clause = engine
        .compile(
            "for sliding window $w in (1 to 500) \
             start at $s when true() \
             end at $e when $e - $s = 9 \
             return sum($w)",
        )
        .expect("compiles");
    let extension = engine
        .compile("xqa:moving-sum(1 to 500, 10)")
        .expect("compiles");
    let ctx = xqa::DynamicContext::new();

    let mut group = c.benchmark_group("ablation/moving_window");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("nested_iteration_q8", |b| b.iter(|| nested.run(&ctx).expect("runs")));
    group.bench_function("sliding_window_clause", |b| {
        b.iter(|| window_clause.run(&ctx).expect("runs"))
    });
    group.bench_function("xqa_moving_sum", |b| b.iter(|| extension.run(&ctx).expect("runs")));
    group.finish();
}

criterion_group!(
    benches,
    bench_detection_rewrite,
    bench_grouping_equality,
    bench_nest_ordering,
    bench_moving_windows
);
criterion_main!(benches);
