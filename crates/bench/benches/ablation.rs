//! Ablation benches for the design choices DESIGN.md calls out:
//! 1. the implicit-group-by detection rewrite (Q naive vs rewritten vs
//!    explicit Qgb);
//! 2. hash-indexed deep-equal grouping vs the linear `using` comparator
//!    path;
//! 3. `nest ... order by` (sort per group) vs a global pre-sort.

use xqa::{Engine, EngineOptions};
use xqa_bench::harness::Harness;
use xqa_bench::{q_query, qgb_query, Dataset};

fn main() {
    bench_detection_rewrite();
    bench_grouping_equality();
    bench_nest_ordering();
    bench_moving_windows();
}

fn bench_detection_rewrite() {
    let dataset = Dataset::generate(2_000);
    let ctx = dataset.context();
    let plain = Engine::new();
    let detecting = Engine::with_options(EngineOptions {
        detect_implicit_groupby: true,
        ..Default::default()
    });
    let q_src = q_query(&["shipmode"]);

    let naive = plain.compile(&q_src).expect("compiles");
    let rewritten = detecting.compile(&q_src).expect("compiles");
    assert_eq!(rewritten.applied_rewrites().len(), 1, "rewrite must fire");
    let explicit = plain.compile(&qgb_query(&["shipmode"])).expect("compiles");

    let mut group = Harness::group("ablation/detection");
    group.bench("q_naive", || {
        naive.run(&ctx).expect("runs");
    });
    group.bench("q_rewritten", || {
        rewritten.run(&ctx).expect("runs");
    });
    group.bench("qgb_explicit", || {
        explicit.run(&ctx).expect("runs");
    });
}

fn bench_grouping_equality() {
    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();
    let engine = Engine::new();
    let hash = engine
        .compile(
            "for $litem in //order/lineitem \
             group by $litem/shipmode into $a \
             nest $litem into $items return count($items)",
        )
        .expect("compiles");
    let using = engine
        .compile(
            "declare function local:eq($a as item()*, $b as item()*) as xs:boolean \
             { deep-equal($a, $b) }; \
             for $litem in //order/lineitem \
             group by $litem/shipmode into $a using local:eq \
             nest $litem into $items return count($items)",
        )
        .expect("compiles");

    let mut group = Harness::group("ablation/equality");
    group.bench("hash_deep_equal", || {
        hash.run(&ctx).expect("runs");
    });
    group.bench("linear_using", || {
        using.run(&ctx).expect("runs");
    });
}

fn bench_nest_ordering() {
    let dataset = Dataset::generate(4_000);
    let ctx = dataset.context();
    let engine = Engine::new();
    let nest_sort = engine
        .compile(
            "for $li in //order/lineitem \
             group by $li/shipmode into $m \
             nest $li/shipdate order by string($li/shipdate) into $ds \
             return count($ds)",
        )
        .expect("compiles");
    let pre_sort = engine
        .compile(
            "for $li in (for $x in //order/lineitem \
                         order by string($x/shipdate) return $x) \
             group by $li/shipmode into $m \
             nest $li/shipdate into $ds \
             return count($ds)",
        )
        .expect("compiles");

    let mut group = Harness::group("ablation/nest_order");
    group.bench("per_group_sort", || {
        nest_sort.run(&ctx).expect("runs");
    });
    group.bench("global_pre_sort", || {
        pre_sort.run(&ctx).expect("runs");
    });
}

fn bench_moving_windows() {
    // The paper's Q8 moving window, three ways: nested iteration (the
    // paper's only option), an XQuery 3.0 sliding window, and the O(n)
    // xqa:moving-sum extension.
    let engine = Engine::new();
    let nested = engine
        .compile(
            "let $v := (1 to 500) \
             return for $x at $i in $v \
                    return sum(for $y at $j in $v \
                               where $j > $i - 10 and $j <= $i return $y)",
        )
        .expect("compiles");
    let window_clause = engine
        .compile(
            "for sliding window $w in (1 to 500) \
             start at $s when true() \
             end at $e when $e - $s = 9 \
             return sum($w)",
        )
        .expect("compiles");
    let extension = engine
        .compile("xqa:moving-sum(1 to 500, 10)")
        .expect("compiles");
    let ctx = xqa::DynamicContext::new();

    let mut group = Harness::group("ablation/moving_window");
    group.bench("nested_iteration_q8", || {
        nested.run(&ctx).expect("runs");
    });
    group.bench("sliding_window_clause", || {
        window_clause.run(&ctx).expect("runs");
    });
    group.bench("xqa_moving_sum", || {
        extension.run(&ctx).expect("runs");
    });
}
