//! Concurrent load-test harness for the HTTP serving path: an
//! in-process server driven by N client threads over real sockets,
//! sweeping connection reuse (keep-alive vs per-request close) and
//! result transport (chunked streaming vs buffered).
//!
//! Every row is a derived record carrying `clients`,
//! `requests_per_sec`, `p50_us` and `p99_us` (quantiles from the
//! service's own fixed-bucket histogram). The
//! `keepalive_vs_close_speedup_c16` row carries the throughput ratio
//! CI enforces (keep-alive must be >= 1.5x close at 16 clients).
//!
//! `SERVE_BENCH_REQUESTS` overrides the per-client request count
//! (default 200) so the CI smoke job can run a small sweep.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use xqa_bench::harness::Harness;
use xqa_service::metrics::LatencyHistogram;
use xqa_service::{DocumentCatalog, Server, ServiceConfig};
use xqa_workload::{generate_orders, OrdersConfig};

// Deliberately cheap: the sweep measures the serving path (connection
// setup, admission, dispatch, framing), not the evaluator, so engine
// time must not mask the connection-reuse effect.
const QUERY: &str = "sum(1 to 100)";
const CLIENTS: [usize; 3] = [1, 4, 16];

fn per_client_requests() -> usize {
    std::env::var("SERVE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Read one framed response off a keep-alive socket; returns the body.
fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read head") > 0,
            "connection closed mid-response"
        );
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    assert!(head.starts_with("HTTP/1.1 200 "), "{head}");
    let lower = head.to_ascii_lowercase();
    if lower.contains("transfer-encoding: chunked") {
        let mut out = String::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).expect("chunk size");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex size");
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk).expect("chunk data");
            if size == 0 {
                break;
            }
            out.push_str(std::str::from_utf8(&chunk[..size]).expect("utf-8"));
        }
        out
    } else {
        let len: usize = lower
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .map(|v| v.trim().parse().expect("content-length"))
            .unwrap_or(0);
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf).expect("body");
        String::from_utf8(buf).expect("utf-8 body")
    }
}

fn request_line(target: &str, close: bool) -> String {
    format!(
        "POST {target} HTTP/1.1\r\nHost: bench\r\n{}Content-Length: {}\r\n\r\n{QUERY}",
        if close { "Connection: close\r\n" } else { "" },
        QUERY.len()
    )
}

/// One client's run: `requests` request/response cycles, returning the
/// per-request latencies. Keep-alive reuses one socket; close mode
/// reconnects per request.
fn run_client(
    addr: std::net::SocketAddr,
    keep_alive: bool,
    target: &str,
    requests: usize,
    expected: &str,
) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(requests);
    if keep_alive {
        let raw = request_line(target, false);
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        for _ in 0..requests {
            let start = Instant::now();
            stream.write_all(raw.as_bytes()).expect("send");
            let body = read_response(&mut reader);
            latencies.push(start.elapsed());
            assert_eq!(body, expected);
        }
    } else {
        let raw = request_line(target, true);
        for _ in 0..requests {
            let start = Instant::now();
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(raw.as_bytes()).expect("send");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            latencies.push(start.elapsed());
            assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
            assert!(response.contains(expected), "{response}");
        }
    }
    latencies
}

/// Drive `clients` threads against the server and record one derived
/// row. Returns total requests per second.
#[allow(clippy::too_many_arguments)]
fn run_load(
    group: &mut Harness,
    addr: std::net::SocketAddr,
    name: &str,
    clients: usize,
    keep_alive: bool,
    target: &str,
    requests: usize,
    expected: &str,
) -> f64 {
    // Warm-up: prime the plan cache and fault in the serving path.
    run_client(addr, keep_alive, target, 2, expected);
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| s.spawn(move || run_client(addr, keep_alive, target, requests, expected)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed();
    let total = (clients * requests) as f64;
    let rps = total / wall.as_secs_f64().max(1e-9);

    let histogram = LatencyHistogram::default();
    for l in &latencies {
        histogram.record(*l);
    }
    let p50 = histogram.quantile_us(0.5);
    let p99 = histogram.quantile_us(0.99);
    println!(
        "serve/{name:<28} {rps:>10.0} req/s  p50 {p50:>8}us  p99 {p99:>8}us  \
         ({clients} clients x {requests} requests)"
    );
    group.annotate("clients", clients.to_string());
    group.annotate("requests_per_client", requests.to_string());
    group.annotate("requests_per_sec", format!("{rps:.1}"));
    group.annotate("p50_us", p50.to_string());
    group.annotate("p99_us", p99.to_string());
    group.record_derived(name);
    rps
}

fn main() {
    let requests = per_client_requests();
    let mut catalog = DocumentCatalog::new();
    catalog.set_context(generate_orders(&OrdersConfig::with_total_lineitems(500)));
    let server = Server::start(
        "127.0.0.1:0",
        &catalog,
        ServiceConfig {
            workers: 16,
            max_queue: 256,
            max_inflight_per_client: 256,
            // Recording every load-test request would measure the
            // recorder, not the serving path.
            flight_recorder_capacity: 0,
            ..Default::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    // Reference result, used to verify every response body.
    let expected = {
        let engine = xqa::Engine::new();
        let plan = engine.compile(QUERY).expect("compile");
        let ctx = catalog.new_context();
        xqa::serialize_sequence(&plan.run(&ctx).expect("run"))
    };

    let mut group = Harness::group("serve");
    let mut keepalive_c16 = 0.0;
    let mut close_c16 = 0.0;
    for clients in CLIENTS {
        let ka = run_load(
            &mut group,
            addr,
            &format!("c{clients}/keepalive/streamed"),
            clients,
            true,
            "/query",
            requests,
            &expected,
        );
        let close = run_load(
            &mut group,
            addr,
            &format!("c{clients}/close/streamed"),
            clients,
            false,
            "/query",
            requests,
            &expected,
        );
        if clients == 16 {
            keepalive_c16 = ka;
            close_c16 = close;
        }
    }
    // Transport comparison at the highest concurrency: chunked
    // streaming vs buffered content-length bodies, both keep-alive.
    run_load(
        &mut group,
        addr,
        "c16/keepalive/buffered",
        16,
        true,
        "/query?stream=false",
        requests,
        &expected,
    );

    let speedup = keepalive_c16 / close_c16.max(1e-9);
    println!("serve/keepalive_vs_close_speedup_c16   {speedup:.2}x");
    group.annotate("clients", "16".to_string());
    group.annotate("speedup", format!("{speedup:.3}"));
    group.record_derived("keepalive_vs_close_speedup_c16");

    server.shutdown();

    if let Ok(path) = std::env::var("BENCH_JSON") {
        xqa_bench::harness::write_json(&path).expect("write bench json");
        println!("\nbench records written to {path}");
    }
}
