//! Join-unnesting benches: the hash-join pipeline against the
//! nested-loop plan it replaces, over the orders corpus at 1k–30k
//! lineitems.
//!
//! Two workloads, both byte-identical across join modes by construction
//! (asserted in-bench before timing):
//!
//! - **self join** — the paper's Section 6 baseline: one inner FLWOR
//!   per distinct `shipmode` (7 probes), each re-scanning every
//!   lineitem under the nested plan;
//! - **two collection** — a 50-row `rates` document probed against the
//!   lineitem collection on `quantity`, where the nested plan re-scans
//!   the big side once per rate.
//!
//! Each size/workload pair emits `<label>/hash`, `<label>/nested` and a
//! derived `<label>/speedup` record carrying `speedup_vs_nested`; CI
//! enforces the ≥5x floor on the largest two-collection row.

use xqa::{parse_document, serialize_sequence, DynamicContext, Engine, EngineOptions, JoinMode};
use xqa_bench::harness::Harness;
use xqa_bench::Dataset;

const LINEITEMS: [usize; 3] = [1_000, 10_000, 30_000];

const SELF_JOIN: &str = "for $m in distinct-values(//lineitem/shipmode) \
     let $items := for $li in //lineitem where $li/shipmode = $m return $li \
     order by string($m) \
     return <g>{string($m)}:{count($items)}</g>";

const TWO_COLLECTION: &str = "for $r in doc(\"rates\")//rate \
     let $ls := for $li in //lineitem where $li/quantity = $r/q return $li \
     order by number($r/q) \
     return <g>{string($r/q)}:{count($ls)}</g>";

fn engines() -> (Engine, Engine) {
    let hash = Engine::with_options(EngineOptions {
        join: JoinMode::Hash,
        ..Default::default()
    });
    let nested = Engine::with_options(EngineOptions {
        join: JoinMode::Nested,
        ..Default::default()
    });
    (hash, nested)
}

/// Compile under both join modes, check the hash plan actually probes a
/// hash table and that outputs are byte-identical, then time both and
/// record the speedup.
fn bench_pair(group: &mut Harness, label: &str, query: &str, ctx: &DynamicContext) {
    let (hash_engine, nested_engine) = engines();
    let hashed = hash_engine.compile(query).expect("compiles");
    assert!(
        hashed.explain().contains("[hash join"),
        "hash plan must annotate a hash join for {label}:\n{}",
        hashed.explain()
    );
    let nested = nested_engine.compile(query).expect("compiles");
    assert!(
        !nested.explain().contains("[hash join"),
        "nested plan must not annotate hash joins for {label}"
    );

    let probes_before = ctx.stats.snapshot().join_hash_probes;
    let a = serialize_sequence(&hashed.run(ctx).expect("runs"));
    assert!(
        ctx.stats.snapshot().join_hash_probes > probes_before,
        "hash path must record probes for {label}"
    );
    let b = serialize_sequence(&nested.run(ctx).expect("runs"));
    assert_eq!(a, b, "join modes disagree for {label}");

    let hash_mean = group.bench(&format!("{label}/hash"), || {
        hashed.run(ctx).expect("runs");
    });
    let nested_mean = group.bench(&format!("{label}/nested"), || {
        nested.run(ctx).expect("runs");
    });
    let speedup = nested_mean.as_secs_f64() / hash_mean.as_secs_f64().max(1e-12);
    println!(
        "{:<40} speedup {speedup:>10.2}x",
        format!("{}/{label}", "join")
    );
    group.annotate("speedup_vs_nested", format!("{speedup:.3}"));
    group.record_derived(&format!("{label}/speedup"));
}

/// A 50-row lookup document keyed by the `quantity` domain (1..=50).
fn rates_doc() -> std::sync::Arc<xqa::xdm::Document> {
    let mut xml = String::from("<rates>");
    for q in 1..=50 {
        xml.push_str(&format!("<rate><q>{q}</q></rate>"));
    }
    xml.push_str("</rates>");
    parse_document(&xml).expect("rates doc parses")
}

fn main() {
    let datasets: Vec<Dataset> = LINEITEMS.iter().map(|n| Dataset::generate(*n)).collect();

    // The paper's baseline self-join: distinct keys against the source.
    let mut group = Harness::group("join/self_join");
    for dataset in &datasets {
        let ctx = dataset.context();
        bench_pair(
            &mut group,
            &format!("n{}", dataset.lineitems),
            SELF_JOIN,
            &ctx,
        );
    }

    // Two collections joined on a 50-value numeric key: the nested plan
    // re-walks every lineitem per rate.
    let mut group = Harness::group("join/two_collection");
    let rates = rates_doc();
    for dataset in &datasets {
        let mut ctx = dataset.context();
        ctx.register_document("rates".to_string(), &rates);
        bench_pair(
            &mut group,
            &format!("n{}", dataset.lineitems),
            TWO_COLLECTION,
            &ctx,
        );
    }

    // CI uploads the machine-readable run as BENCH_join.json.
    if let Ok(path) = std::env::var("BENCH_JSON") {
        xqa_bench::harness::write_json(&path).expect("write bench json");
        println!("\nbench records written to {path}");
    }
}
