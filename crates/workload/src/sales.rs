//! Sales workload — the paper's Q3/Q8/Q10 examples (moving windows,
//! multi-level aggregation, ranking).
//!
//! Each `<sale>` has a timestamp, product, state, region, quantity and
//! price, with states nested consistently inside their regions so the
//! region/state hierarchy of Q3 is meaningful.

use crate::rng::DetRng;
use std::sync::Arc;
use xqa_xdm::{Document, DocumentBuilder, QName};

/// Region → states map (the Q3 hierarchy).
pub const REGIONS: [(&str, &[&str]); 4] = [
    ("West", &["CA", "OR", "WA", "NV"]),
    ("East", &["NY", "MA", "NJ"]),
    ("Central", &["IL", "MN", "TX"]),
    ("South", &["FL", "GA"]),
];

/// The product catalogue.
pub const PRODUCTS: [&str; 6] = [
    "Green Tea",
    "Black Tea",
    "Oolong",
    "Espresso",
    "Drip Coffee",
    "Cocoa",
];

/// Configuration for the sales generator.
#[derive(Debug, Clone, Copy)]
pub struct SalesConfig {
    /// Number of sale elements.
    pub sales: usize,
    /// RNG seed.
    pub seed: u64,
    /// First year of the timestamp range (inclusive).
    pub year_from: i32,
    /// Last year of the timestamp range (inclusive).
    pub year_to: i32,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            sales: 10_000,
            seed: 42,
            year_from: 2003,
            year_to: 2005,
        }
    }
}

fn q(s: &str) -> QName {
    QName::local(s)
}

/// Generate a `<sales>` document.
pub fn generate(cfg: &SalesConfig) -> Arc<Document> {
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let mut b = DocumentBuilder::new();
    b.start_element(q("sales"));
    for _ in 0..cfg.sales {
        let (region, states) = REGIONS[rng.gen_range(0..REGIONS.len())];
        let state = states[rng.gen_range(0..states.len())];
        b.start_element(q("sale"));
        b.start_element(q("timestamp"))
            .text(&format!(
                "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
                rng.gen_range(cfg.year_from..=cfg.year_to),
                rng.gen_range(1..=12i32),
                rng.gen_range(1..=28i32),
                rng.gen_range(0..24i32),
                rng.gen_range(0..60i32),
                rng.gen_range(0..60i32)
            ))
            .end_element();
        b.start_element(q("product"))
            .text(PRODUCTS[rng.gen_range(0..PRODUCTS.len())])
            .end_element();
        b.start_element(q("state")).text(state).end_element();
        b.start_element(q("region")).text(region).end_element();
        b.start_element(q("quantity"))
            .text(&rng.gen_range(1..=40u32).to_string())
            .end_element();
        b.start_element(q("price"))
            .text(&format!("{}.{:02}", rng.gen_range(1..100i32), 99))
            .end_element();
        b.end_element();
    }
    b.end_element();
    b.finish()
}

/// The paper's Section 2 example sale instance.
pub fn paper_example_sale() -> Arc<Document> {
    let mut b = DocumentBuilder::new();
    b.start_element(q("sale"));
    b.start_element(q("timestamp"))
        .text("2004-01-31T11:32:07")
        .end_element();
    b.start_element(q("product"))
        .text("Green Tea")
        .end_element();
    b.start_element(q("state")).text("CA").end_element();
    b.start_element(q("region")).text("West").end_element();
    b.start_element(q("quantity")).text("10").end_element();
    b.start_element(q("price")).text("9.99").end_element();
    b.end_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use xqa_xmlparse::serialize_node;

    #[test]
    fn deterministic() {
        let cfg = SalesConfig {
            sales: 25,
            ..Default::default()
        };
        assert_eq!(
            serialize_node(&generate(&cfg).root()),
            serialize_node(&generate(&cfg).root())
        );
    }

    #[test]
    fn states_stay_inside_their_regions() {
        let cfg = SalesConfig {
            sales: 2_000,
            ..Default::default()
        };
        let doc = generate(&cfg);
        let sales = doc.root().children().next().unwrap();
        let mut state_region: HashMap<String, String> = HashMap::new();
        for sale in sales.children() {
            let mut state = String::new();
            let mut region = String::new();
            for c in sale.children() {
                match c.name().map(|n| n.local_part()).unwrap_or("") {
                    "state" => state = c.string_value(),
                    "region" => region = c.string_value(),
                    _ => {}
                }
            }
            let prev = state_region.insert(state.clone(), region.clone());
            if let Some(prev) = prev {
                assert_eq!(prev, region, "state {state} appeared in two regions");
            }
        }
        assert!(state_region.len() >= 10, "most states exercised");
    }

    #[test]
    fn timestamps_parse_as_datetimes() {
        let cfg = SalesConfig {
            sales: 100,
            ..Default::default()
        };
        let doc = generate(&cfg);
        let sales = doc.root().children().next().unwrap();
        for sale in sales.children() {
            let ts = sale
                .children()
                .find(|c| {
                    c.name()
                        .map(|n| n.local_part() == "timestamp")
                        .unwrap_or(false)
                })
                .expect("timestamp present");
            xqa_xdm::DateTime::parse(&ts.string_value()).expect("valid dateTime");
        }
    }

    #[test]
    fn paper_example_matches_section2() {
        let s = serialize_node(&paper_example_sale().root());
        assert_eq!(
            s,
            "<sale><timestamp>2004-01-31T11:32:07</timestamp><product>Green Tea</product>\
             <state>CA</state><region>West</region><quantity>10</quantity>\
             <price>9.99</price></sale>"
        );
    }
}
