//! Deterministic pseudo-random generator for the workload generators.
//!
//! A splitmix64 core: tiny, fast, statistically solid for data
//! generation, and — most importantly — dependency-free, so the
//! workspace builds offline. Equal seeds always produce equal streams,
//! which is the property every generator test relies on.

/// Splitmix64 generator. Not cryptographic; for workload synthesis and
/// deterministic fuzz-style tests only.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seed the generator. Equal seeds give identical streams.
    pub fn seed_from_u64(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` via rejection sampling (no modulo bias).
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "bounded(0)");
        // 2^64 mod n: values below this threshold would bias the result.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }

    /// Uniform value in the given (half-open or inclusive) integer range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the standard u64 -> f64 construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled integer type.
    type Output;
    /// Draw a uniform value from the range.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut DetRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 drawn");
        for _ in 0..1000 {
            let v = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(1..=50u32);
            assert!((1..=50).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "p=0.25 gave {heads}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = DetRng::seed_from_u64(9);
        assert_eq!(rng.gen_range(3..=3i32), 3);
    }
}
