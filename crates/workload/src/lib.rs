//! # xqa-workload — deterministic workload generators
//!
//! Reproduces the three document families of *"Extending XQuery for
//! Analytics"* (SIGMOD 2005):
//!
//! - [`bib`] — bibliographies (Sections 2–5 examples, rollup/cube);
//! - [`sales`] — sales facts (Q3/Q8/Q10: windows, hierarchies, ranking);
//! - [`orders`] — the Section 6 purchase-order collection whose
//!   grouping-column cardinalities (4/7/9/28/36/50) drive the paper's
//!   chart.
//!
//! All generators are seeded (a dependency-free splitmix64,
//! [`rng::DetRng`]) — the same configuration always produces
//! byte-identical documents, so benchmarks are reproducible.

#![warn(missing_docs)]

pub mod bib;
pub mod orders;
pub mod rng;
pub mod sales;

pub use bib::{generate as generate_bib, BibConfig};
pub use orders::{
    generate as generate_orders, generate_split as generate_orders_split, OrdersConfig,
};
pub use rng::DetRng;
pub use sales::{generate as generate_sales, SalesConfig};
