//! Purchase-order workload — the Section 6 experimental data.
//!
//! The paper: "XML documents containing purchase order data with each
//! order containing detailed lineitem information about several items
//! purchased, customer information, and other order information. Each
//! order element had an average of four lineitem elements. Each
//! lineitem element contained many child elements. The textual
//! representation of each order document was about 3K bytes."
//!
//! We generate TPC-H-flavoured lineitems whose grouping columns have
//! exactly the cardinalities the paper's chart sweeps:
//! `shipinstruct` 4 values, `shipmode` 7, `tax` 9, `quantity` 50,
//! so (shipinstruct, shipmode) = 28 and (shipinstruct, tax) = 36
//! pairs. Each grouping element occurs exactly once per lineitem,
//! matching the paper's setup.

use crate::rng::DetRng;
use std::sync::Arc;
use xqa_xdm::{Document, DocumentBuilder, QName};

/// The four TPC-H shipping instructions.
pub const SHIPINSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// The seven TPC-H shipping modes.
pub const SHIPMODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// The nine TPC-H tax rates (0.00 to 0.08).
pub const TAX: [&str; 9] = [
    "0.00", "0.01", "0.02", "0.03", "0.04", "0.05", "0.06", "0.07", "0.08",
];

/// Quantity domain: 1..=50 (50 distinct values).
pub const QUANTITY_MAX: u32 = 50;

const FIRST_NAMES: [&str; 8] = [
    "Ada", "Grace", "Edgar", "Jim", "Barbara", "Donald", "Tony", "Fran",
];
const LAST_NAMES: [&str; 8] = [
    "Codd",
    "Hopper",
    "Gray",
    "Melton",
    "Liskov",
    "Chamberlin",
    "Hoare",
    "Allen",
];
const CITIES: [&str; 6] = [
    "San Jose",
    "Almaden",
    "Baltimore",
    "Toronto",
    "Madison",
    "Aalborg",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Configuration for the purchase-order generator.
#[derive(Debug, Clone, Copy)]
pub struct OrdersConfig {
    /// Number of order elements.
    pub orders: usize,
    /// RNG seed — equal seeds give identical documents.
    pub seed: u64,
    /// Minimum lineitems per order (default 1).
    pub lineitems_min: usize,
    /// Maximum lineitems per order (default 7; with min 1 the mean is 4,
    /// matching the paper).
    pub lineitems_max: usize,
}

impl Default for OrdersConfig {
    fn default() -> Self {
        OrdersConfig {
            orders: 2_000,
            seed: 42,
            lineitems_min: 1,
            lineitems_max: 7,
        }
    }
}

impl OrdersConfig {
    /// A configuration sized to produce approximately
    /// `total_lineitems` lineitems (the paper sweeps 8K–32K).
    pub fn with_total_lineitems(total_lineitems: usize) -> OrdersConfig {
        OrdersConfig {
            orders: total_lineitems / 4,
            ..Default::default()
        }
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> OrdersConfig {
        self.seed = seed;
        self
    }
}

fn q(s: &str) -> QName {
    QName::local(s)
}

/// Generate the order collection as one document with an `<orders>`
/// root (the in-memory equivalent of the paper's document collection;
/// `//order/lineitem` sees the same node population either way).
pub fn generate(cfg: &OrdersConfig) -> Arc<Document> {
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let mut b = DocumentBuilder::new();
    b.start_element(q("orders"));
    for order_id in 0..cfg.orders {
        write_order(&mut b, &mut rng, order_id, cfg);
    }
    b.end_element();
    b.finish()
}

/// Generate the collection as one document per order, for
/// `fn:collection()`-style runs.
pub fn generate_split(cfg: &OrdersConfig) -> Vec<Arc<Document>> {
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    (0..cfg.orders)
        .map(|order_id| {
            let mut b = DocumentBuilder::new();
            write_order(&mut b, &mut rng, order_id, cfg);
            b.finish()
        })
        .collect()
}

fn pick<'a>(rng: &mut DetRng, options: &'a [&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn write_order(b: &mut DocumentBuilder, rng: &mut DetRng, order_id: usize, cfg: &OrdersConfig) {
    b.start_element(q("order"));
    b.start_element(q("orderkey"))
        .text(&order_id.to_string())
        .end_element();
    b.start_element(q("orderstatus"))
        .text(if rng.gen_bool(0.5) { "O" } else { "F" })
        .end_element();
    b.start_element(q("orderdate"))
        .text(&format!(
            "{:04}-{:02}-{:02}",
            rng.gen_range(2003..=2005i32),
            rng.gen_range(1..=12i32),
            rng.gen_range(1..=28i32)
        ))
        .end_element();
    b.start_element(q("orderpriority"))
        .text(pick(rng, &PRIORITIES))
        .end_element();
    // Customer information block ("customer information, and other
    // order information").
    b.start_element(q("customer"));
    b.start_element(q("name"))
        .text(&format!(
            "{} {}",
            pick(rng, &FIRST_NAMES),
            pick(rng, &LAST_NAMES)
        ))
        .end_element();
    b.start_element(q("address"));
    b.start_element(q("street"))
        .text(&format!("{} Harry Rd", rng.gen_range(1..=999i32)))
        .end_element();
    b.start_element(q("city"))
        .text(pick(rng, &CITIES))
        .end_element();
    b.start_element(q("zip"))
        .text(&format!("{:05}", rng.gen_range(10000..99999i32)))
        .end_element();
    b.end_element(); // address
    b.start_element(q("phone"))
        .text(&format!(
            "{:03}-{:03}-{:04}",
            rng.gen_range(200..999i32),
            rng.gen_range(200..999i32),
            rng.gen_range(0..9999i32)
        ))
        .end_element();
    b.start_element(q("mktsegment"))
        .text(pick(
            rng,
            &[
                "BUILDING",
                "AUTOMOBILE",
                "MACHINERY",
                "HOUSEHOLD",
                "FURNITURE",
            ],
        ))
        .end_element();
    b.end_element(); // customer
    let lineitems = rng.gen_range(cfg.lineitems_min..=cfg.lineitems_max);
    for line in 0..lineitems {
        write_lineitem(b, rng, line);
    }
    b.start_element(q("totalprice"))
        .text(&format!(
            "{}.{:02}",
            rng.gen_range(100..100_000i32),
            rng.gen_range(0..100i32)
        ))
        .end_element();
    b.start_element(q("comment"))
        .text("carefully packed; deliver to receiving dock between business hours only")
        .end_element();
    b.end_element(); // order
}

fn write_lineitem(b: &mut DocumentBuilder, rng: &mut DetRng, line: usize) {
    b.start_element(q("lineitem"));
    b.start_element(q("linenumber"))
        .text(&(line + 1).to_string())
        .end_element();
    b.start_element(q("partkey"))
        .text(&rng.gen_range(1..200_000u32).to_string())
        .end_element();
    b.start_element(q("suppkey"))
        .text(&rng.gen_range(1..10_000u32).to_string())
        .end_element();
    // The six grouping columns of the experiment. Each occurs exactly
    // once per lineitem (the paper's precondition).
    b.start_element(q("quantity"))
        .text(&rng.gen_range(1..=QUANTITY_MAX).to_string())
        .end_element();
    b.start_element(q("extendedprice"))
        .text(&format!(
            "{}.{:02}",
            rng.gen_range(900..105_000i32),
            rng.gen_range(0..100i32)
        ))
        .end_element();
    b.start_element(q("discount"))
        .text(&format!("0.{:02}", rng.gen_range(0..=10i32)))
        .end_element();
    b.start_element(q("tax"))
        .text(pick(rng, &TAX))
        .end_element();
    b.start_element(q("returnflag"))
        .text(pick(rng, &["A", "N", "R"]))
        .end_element();
    b.start_element(q("linestatus"))
        .text(if rng.gen_bool(0.5) { "O" } else { "F" })
        .end_element();
    b.start_element(q("shipdate"))
        .text(&format!(
            "{:04}-{:02}-{:02}",
            rng.gen_range(2003..=2005i32),
            rng.gen_range(1..=12i32),
            rng.gen_range(1..=28i32)
        ))
        .end_element();
    b.start_element(q("shipinstruct"))
        .text(pick(rng, &SHIPINSTRUCT))
        .end_element();
    b.start_element(q("shipmode"))
        .text(pick(rng, &SHIPMODE))
        .end_element();
    b.start_element(q("comment"))
        .text("final accounts nag blithely across the express deposits")
        .end_element();
    b.end_element(); // lineitem
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xmlparse::serialize_node;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = OrdersConfig {
            orders: 20,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(serialize_node(&a.root()), serialize_node(&b.root()));
        let c = generate(&OrdersConfig { seed: 7, ..cfg });
        assert_ne!(serialize_node(&a.root()), serialize_node(&c.root()));
    }

    #[test]
    fn average_four_lineitems_per_order() {
        let cfg = OrdersConfig {
            orders: 2_000,
            ..Default::default()
        };
        let doc = generate(&cfg);
        let root = doc.root().children().next().unwrap();
        let mut lineitems = 0usize;
        for order in root.children() {
            lineitems += order
                .children()
                .filter(|c| {
                    c.name()
                        .map(|n| n.local_part() == "lineitem")
                        .unwrap_or(false)
                })
                .count();
        }
        let avg = lineitems as f64 / cfg.orders as f64;
        assert!((3.6..=4.4).contains(&avg), "average lineitems {avg}");
    }

    #[test]
    fn order_text_is_about_3kb() {
        // The paper: "about 3K bytes" per order document.
        let cfg = OrdersConfig {
            orders: 50,
            ..Default::default()
        };
        let docs = generate_split(&cfg);
        let total: usize = docs.iter().map(|d| serialize_node(&d.root()).len()).sum();
        let avg = total as f64 / docs.len() as f64;
        assert!(
            (1_500.0..=4_500.0).contains(&avg),
            "average order bytes {avg}"
        );
    }

    #[test]
    fn grouping_cardinalities_are_the_charts() {
        use std::collections::HashSet;
        let cfg = OrdersConfig {
            orders: 2_000,
            ..Default::default()
        };
        let doc = generate(&cfg);
        let root = doc.root().children().next().unwrap();
        let mut shipinstruct = HashSet::new();
        let mut shipmode = HashSet::new();
        let mut tax = HashSet::new();
        let mut quantity = HashSet::new();
        for order in root.children() {
            for li in order.children() {
                if li.name().map(|n| n.local_part()) != Some("lineitem") {
                    continue;
                }
                for c in li.children() {
                    let text = c.string_value();
                    match c.name().map(|n| n.local_part()).unwrap_or("") {
                        "shipinstruct" => {
                            shipinstruct.insert(text);
                        }
                        "shipmode" => {
                            shipmode.insert(text);
                        }
                        "tax" => {
                            tax.insert(text);
                        }
                        "quantity" => {
                            quantity.insert(text);
                        }
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(shipinstruct.len(), 4);
        assert_eq!(shipmode.len(), 7);
        assert_eq!(tax.len(), 9);
        assert_eq!(quantity.len(), 50);
    }

    #[test]
    fn with_total_lineitems_sizes_order_count() {
        let cfg = OrdersConfig::with_total_lineitems(8_000);
        assert_eq!(cfg.orders, 2_000);
    }

    #[test]
    fn split_and_joint_generation_agree_on_content() {
        let cfg = OrdersConfig {
            orders: 10,
            ..Default::default()
        };
        let joint = generate(&cfg);
        let split = generate_split(&cfg);
        assert_eq!(split.len(), 10);
        let joint_orders: Vec<String> = joint
            .root()
            .children()
            .next()
            .unwrap()
            .children()
            .map(|o| serialize_node(&o))
            .collect();
        let split_orders: Vec<String> = split
            .iter()
            .map(|d| serialize_node(&d.root().children().next().unwrap()))
            .collect();
        assert_eq!(joint_orders, split_orders);
    }
}
