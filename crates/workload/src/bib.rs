//! Bibliography workload — the paper's Sections 2–5 examples.
//!
//! Provides (a) the paper's *literal* example instances (for exact-value
//! tests), and (b) a seeded generator producing arbitrarily large
//! bibliographies with the same shape: 0–3 authors, 0/1 publisher,
//! year, price, discount, and an optional ragged `<categories>` forest
//! for the §5 rollup/cube queries.

use crate::rng::DetRng;
use std::sync::Arc;
use xqa_xdm::{Document, DocumentBuilder, QName};

const AUTHORS: [&str; 10] = [
    "Jim Gray",
    "Andreas Reuter",
    "Jim Melton",
    "Don Chamberlin",
    "C. J. Date",
    "Michael Stonebraker",
    "Jennifer Widom",
    "Hector Garcia-Molina",
    "Jeffrey Ullman",
    "Serge Abiteboul",
];

const PUBLISHERS: [&str; 5] = [
    "Morgan Kaufmann",
    "Addison-Wesley",
    "Prentice Hall",
    "O'Reilly",
    "Springer",
];

const TITLE_HEADS: [&str; 6] = [
    "Transaction",
    "Database",
    "Query",
    "Distributed",
    "Concurrent",
    "Declarative",
];
const TITLE_TAILS: [&str; 6] = [
    "Processing",
    "Systems",
    "Optimization",
    "Foundations",
    "Readings",
    "Principles",
];

/// The category taxonomy used for `<categories>` forests: a small tree
/// whose subtrees are sampled per book (ragged hierarchy, §5).
const TAXONOMY: &[(&str, &[&str])] = &[
    ("software", &["db", "os", "pl"]),
    ("db", &["concurrency", "recovery", "query-processing"]),
    ("hardware", &["cpu", "storage"]),
    ("anthology", &[]),
];

/// Configuration for the bibliography generator.
#[derive(Debug, Clone, Copy)]
pub struct BibConfig {
    /// Number of books.
    pub books: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a book has a publisher (the paper's Q1/Q12 rely
    /// on publisher-less books existing).
    pub publisher_probability: f64,
    /// Include the §5 `<categories>` forest.
    pub with_categories: bool,
}

impl Default for BibConfig {
    fn default() -> Self {
        BibConfig {
            books: 1_000,
            seed: 42,
            publisher_probability: 0.9,
            with_categories: false,
        }
    }
}

fn q(s: &str) -> QName {
    QName::local(s)
}

/// Generate a `<bib>` document.
pub fn generate(cfg: &BibConfig) -> Arc<Document> {
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let mut b = DocumentBuilder::new();
    b.start_element(q("bib"));
    for i in 0..cfg.books {
        write_book(&mut b, &mut rng, i, cfg);
    }
    b.end_element();
    b.finish()
}

fn write_book(b: &mut DocumentBuilder, rng: &mut DetRng, index: usize, cfg: &BibConfig) {
    b.start_element(q("book"));
    let head = TITLE_HEADS[rng.gen_range(0..TITLE_HEADS.len())];
    let tail = TITLE_TAILS[rng.gen_range(0..TITLE_TAILS.len())];
    b.start_element(q("title"))
        .text(&format!("{head} {tail} Vol. {}", index + 1))
        .end_element();
    // 0-3 authors; order matters for the §3.3 permutation semantics, so
    // we sample *with order* from the pool.
    let author_count = rng.gen_range(0..=3usize);
    let mut chosen: Vec<&str> = Vec::new();
    while chosen.len() < author_count {
        let a = AUTHORS[rng.gen_range(0..AUTHORS.len())];
        if !chosen.contains(&a) {
            chosen.push(a);
        }
    }
    for a in chosen {
        b.start_element(q("author")).text(a).end_element();
    }
    if rng.gen_bool(cfg.publisher_probability) {
        b.start_element(q("publisher"))
            .text(PUBLISHERS[rng.gen_range(0..PUBLISHERS.len())])
            .end_element();
    }
    b.start_element(q("year"))
        .text(&rng.gen_range(1990..=2005i32).to_string())
        .end_element();
    b.start_element(q("price"))
        .text(&format!(
            "{}.{:02}",
            rng.gen_range(15..130i32),
            [0, 25, 50, 75, 95][rng.gen_range(0..5usize)]
        ))
        .end_element();
    b.start_element(q("discount"))
        .text(&format!(
            "{}.{:02}",
            rng.gen_range(0..10i32),
            rng.gen_range(0..100i32)
        ))
        .end_element();
    if cfg.with_categories {
        write_categories(b, rng);
    }
    b.end_element();
}

fn write_categories(b: &mut DocumentBuilder, rng: &mut DetRng) {
    b.start_element(q("categories"));
    // 1-2 top-level category trees.
    let tops = rng.gen_range(1..=2usize);
    for _ in 0..tops {
        let (top, children) = TAXONOMY[rng.gen_range(0..TAXONOMY.len())];
        b.start_element(q(top));
        // Random subset of the second level; each child may get a
        // third-level leaf from the taxonomy when one exists.
        for &child in children.iter() {
            if !rng.gen_bool(0.5) {
                continue;
            }
            b.start_element(q(child));
            if let Some((_, grandchildren)) = TAXONOMY.iter().find(|(n, _)| *n == child) {
                for &gc in grandchildren.iter() {
                    if rng.gen_bool(0.4) {
                        b.start_element(q(gc)).end_element();
                    }
                }
            }
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();
}

/// The paper's Section 2 example instance, verbatim shape.
pub fn paper_example_book() -> Arc<Document> {
    let mut b = DocumentBuilder::new();
    b.start_element(q("book"));
    b.start_element(q("title"))
        .text("Transaction Processing")
        .end_element();
    b.start_element(q("author")).text("Jim Gray").end_element();
    b.start_element(q("author"))
        .text("Andreas Reuter")
        .end_element();
    b.start_element(q("publisher"))
        .text("Morgan Kaufmann")
        .end_element();
    b.start_element(q("year")).text("1993").end_element();
    b.start_element(q("price")).text("65.00").end_element();
    b.start_element(q("discount")).text("5.50").end_element();
    b.end_element();
    b.finish()
}

/// The paper's Section 5 extended instances (with `<categories>`).
pub fn paper_section5_bib() -> Arc<Document> {
    let mut b = DocumentBuilder::new();
    b.start_element(q("bib"));
    b.start_element(q("book"));
    b.start_element(q("title"))
        .text("Transaction Processing")
        .end_element();
    b.start_element(q("publisher"))
        .text("Morgan Kaufmann")
        .end_element();
    b.start_element(q("year")).text("1993").end_element();
    b.start_element(q("price")).text("59.00").end_element();
    b.start_element(q("categories"));
    b.start_element(q("software"));
    b.start_element(q("db"));
    b.start_element(q("concurrency")).end_element();
    b.end_element();
    b.start_element(q("distributed")).end_element();
    b.end_element();
    b.end_element();
    b.end_element();
    b.start_element(q("book"));
    b.start_element(q("title"))
        .text("Readings in Database Systems")
        .end_element();
    b.start_element(q("publisher"))
        .text("Morgan Kaufmann")
        .end_element();
    b.start_element(q("year")).text("1998").end_element();
    b.start_element(q("price")).text("65.00").end_element();
    b.start_element(q("categories"));
    b.start_element(q("software"));
    b.start_element(q("db")).end_element();
    b.end_element();
    b.start_element(q("anthology")).end_element();
    b.end_element();
    b.end_element();
    b.end_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xmlparse::serialize_node;

    #[test]
    fn deterministic() {
        let cfg = BibConfig {
            books: 30,
            ..Default::default()
        };
        assert_eq!(
            serialize_node(&generate(&cfg).root()),
            serialize_node(&generate(&cfg).root())
        );
    }

    #[test]
    fn some_books_lack_publishers_and_authors() {
        let cfg = BibConfig {
            books: 500,
            publisher_probability: 0.8,
            ..Default::default()
        };
        let doc = generate(&cfg);
        let bib = doc.root().children().next().unwrap();
        let mut without_pub = 0;
        let mut without_author = 0;
        for book in bib.children() {
            let names: Vec<String> = book
                .children()
                .filter_map(|c| c.name().map(|n| n.local_part().to_string()))
                .collect();
            if !names.iter().any(|n| n == "publisher") {
                without_pub += 1;
            }
            if !names.iter().any(|n| n == "author") {
                without_author += 1;
            }
        }
        assert!(
            without_pub > 0,
            "publisher-less books must exist for Q1/Q12"
        );
        assert!(without_author > 0, "author-less books must exist for Q2");
    }

    #[test]
    fn categories_present_when_requested() {
        let cfg = BibConfig {
            books: 50,
            with_categories: true,
            ..Default::default()
        };
        let doc = generate(&cfg);
        let text = serialize_node(&doc.root());
        assert!(text.contains("<categories>"));
        let plain = generate(&BibConfig {
            with_categories: false,
            ..cfg
        });
        assert!(!serialize_node(&plain.root()).contains("<categories>"));
    }

    #[test]
    fn paper_example_matches_section2() {
        let doc = paper_example_book();
        let s = serialize_node(&doc.root());
        assert!(s.starts_with("<book><title>Transaction Processing</title>"));
        assert!(s.contains("<author>Jim Gray</author><author>Andreas Reuter</author>"));
        assert!(s.contains("<price>65.00</price><discount>5.50</discount>"));
    }

    #[test]
    fn section5_bib_has_ragged_categories() {
        let doc = paper_section5_bib();
        let s = serialize_node(&doc.root());
        assert!(s.contains("<software><db><concurrency/></db><distributed/></software>"));
        assert!(s.contains("<software><db/></software><anthology/>"));
    }
}
