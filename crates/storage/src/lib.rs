//! Indexed, dictionary-encoded document storage below the catalog.
//!
//! Every query used to tree-walk arena nodes straight out of the
//! one-shot parse; the XML query processing survey shows that structural
//! labeling schemes turn descendant navigation into range lookups, and
//! VXQuery demonstrates that a storage/statistics layer below the
//! evaluator is what lets an XQuery engine scale past toy documents.
//! This crate compiles a parsed [`Document`] into a compact
//! [`DocumentStore`]:
//!
//! - **Dictionary-encoded QNames** ([`NameId`]): every distinct element
//!   name is interned once; per-name structures are indexed by the id.
//! - **Interval labels**: node ids are preorder (the builder guarantees
//!   it), so each node's subtree is the contiguous id range
//!   `[id, subtree_end(id)]` — the pre/post interval encoding collapsed
//!   to one `u32` per node.
//! - **Path index**: per element name, the sorted posting list of node
//!   ids. `descendant::T` from any origin is a binary search of `T`'s
//!   postings against the origin's label range.
//! - **Typed-value index**: elements whose content is a single text node
//!   (or empty) are *indexable leaves*; their string values are
//!   dictionary-encoded and, when every leaf of the name parses in the
//!   `xs:double` lexical space, mirrored into a numeric index. Value
//!   equality predicates become dictionary/range lookups that return the
//!   leaf *parents*.
//! - **Statistics** ([`NameStats`], merged into [`CatalogStatistics`]):
//!   per-path cardinalities the optimizer consults when choosing index
//!   scan vs. tree walk.
//! - **Versioning**: every store gets a process-monotonic version from
//!   one global counter, so a plan cache keyed by catalog version
//!   invalidates precisely when any document is (re)loaded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xqa_xdm::{parse_double, Document, NodeHandle, NodeId, NodeKind, QName};

/// Interned element-name id; index into the store's name dictionary.
pub type NameId = u32;

/// Global monotonic store version: bumped once per [`DocumentStore`]
/// built, so "any document changed" is a single `u64` comparison.
static STORE_VERSION: AtomicU64 = AtomicU64::new(0);

/// Per-element-name cardinality and value-index statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NameStats {
    /// Number of elements with this name.
    pub elements: u64,
    /// Every element with this name is an indexable leaf (content is a
    /// single text node or empty), so its string value is in the value
    /// index and atomization equals the indexed string.
    pub all_leaf: bool,
    /// `all_leaf` and every leaf value parses in the `xs:double`
    /// lexical space — numeric equality lookups are then exact and can
    /// never hide a dynamic cast error the tree walk would raise.
    pub all_numeric: bool,
    /// Distinct leaf string values (0 when not `all_leaf`).
    pub distinct_values: u64,
}

/// The typed-value index for one element name: leaf string values
/// dictionary-encoded into postings, plus a numeric mirror when the
/// whole column parses as `xs:double`.
#[derive(Debug, Default)]
struct ValueIndex {
    /// Every element of this name qualifies as an indexable leaf.
    complete: bool,
    /// `complete` and every value parses as `xs:double`.
    all_numeric: bool,
    /// Value dictionary: string → sorted leaf element ids.
    by_string: HashMap<Arc<str>, Vec<NodeId>>,
    /// `(value, leaf element id)` sorted by value then id.
    numeric: Vec<(f64, NodeId)>,
}

impl ValueIndex {
    fn bytes(&self) -> u64 {
        let mut total = 0u64;
        for (value, ids) in &self.by_string {
            total += value.len() as u64 + (ids.len() * std::mem::size_of::<NodeId>()) as u64;
        }
        total + (self.numeric.len() * std::mem::size_of::<(f64, NodeId)>()) as u64
    }
}

/// One document compiled into its indexed form. Immutable after build,
/// shared as `Arc<DocumentStore>` alongside the `Arc<Document>` it
/// indexes.
#[derive(Debug)]
pub struct DocumentStore {
    doc: Arc<Document>,
    version: u64,
    /// Per node: the last node id inside its subtree (inclusive).
    subtree_end: Vec<NodeId>,
    /// Interned element names, indexed by [`NameId`].
    names: Vec<QName>,
    by_name: HashMap<QName, NameId>,
    /// Per [`NameId`]: sorted element node ids.
    element_postings: Vec<Vec<NodeId>>,
    /// Per [`NameId`]: the value index over that name's leaves.
    values: Vec<ValueIndex>,
    /// Distinct `(parent name, child name)` step counts — the per-path
    /// cardinality statistics behind [`CatalogStatistics`].
    step_counts: HashMap<(NameId, NameId), u64>,
    total_elements: u64,
}

impl DocumentStore {
    /// Compile `doc` into its indexed form. One linear pass over the
    /// arena (plus per-name sorts that are already in document order).
    pub fn build(doc: &Arc<Document>) -> DocumentStore {
        let n = doc.len();
        let mut store = DocumentStore {
            doc: Arc::clone(doc),
            version: STORE_VERSION.fetch_add(1, Ordering::Relaxed) + 1,
            subtree_end: (0..n as NodeId).collect(),
            names: Vec::new(),
            by_name: HashMap::new(),
            element_postings: Vec::new(),
            values: Vec::new(),
            step_counts: HashMap::new(),
            total_elements: 0,
        };
        // Interval labels: ids are preorder, so a node's subtree is the
        // contiguous range ending at its last descendant. Walking ids in
        // reverse and folding each node's end into its parent computes
        // every label in O(n): by the time a parent is visited, all its
        // descendants (larger ids) have already propagated upward.
        for id in (1..n as NodeId).rev() {
            let node = doc.handle(id).expect("id < doc.len()");
            if let Some(parent) = node.parent() {
                let pid = parent.id() as usize;
                let end = store.subtree_end[id as usize];
                if end > store.subtree_end[pid] {
                    store.subtree_end[pid] = end;
                }
            }
        }
        // Postings, value index and step statistics in one forward pass.
        for id in 0..n as NodeId {
            let node = doc.handle(id).expect("id < doc.len()");
            if node.kind() != NodeKind::Element {
                continue;
            }
            let name = node.name().expect("elements are named").clone();
            let name_id = store.intern(name);
            store.total_elements += 1;
            store.element_postings[name_id as usize].push(id);
            if let Some(parent) = node.parent() {
                if parent.kind() == NodeKind::Element {
                    let parent_name = parent.name().expect("elements are named").clone();
                    let parent_id = store.intern(parent_name);
                    *store.step_counts.entry((parent_id, name_id)).or_insert(0) += 1;
                }
            }
            match leaf_value(&node) {
                Some(value) => {
                    let vi = &mut store.values[name_id as usize];
                    if parse_double(&value).is_err() {
                        vi.all_numeric = false;
                    }
                    vi.by_string.entry(value).or_default().push(id);
                }
                None => {
                    let vi = &mut store.values[name_id as usize];
                    vi.complete = false;
                    vi.all_numeric = false;
                }
            }
        }
        for vi in &mut store.values {
            if !vi.complete {
                vi.by_string.clear();
                continue;
            }
            if vi.all_numeric {
                for (value, ids) in &vi.by_string {
                    let v = parse_double(value).expect("all_numeric checked every value");
                    vi.numeric.extend(ids.iter().map(|&id| (v, id)));
                }
                vi.numeric
                    .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            }
        }
        store
    }

    fn intern(&mut self, name: QName) -> NameId {
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = self.names.len() as NameId;
        self.names.push(name.clone());
        self.by_name.insert(name, id);
        self.element_postings.push(Vec::new());
        self.values.push(ValueIndex {
            complete: true,
            all_numeric: true,
            by_string: HashMap::new(),
            numeric: Vec::new(),
        });
        id
    }

    /// The indexed document.
    pub fn document(&self) -> &Arc<Document> {
        &self.doc
    }

    /// The process-monotonic version assigned when this store was built.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The last node id inside `id`'s subtree (inclusive interval label).
    pub fn subtree_end(&self, id: NodeId) -> NodeId {
        self.subtree_end[id as usize]
    }

    /// Elements in the whole document, by name.
    pub fn element_count(&self, name: &QName) -> u64 {
        self.by_name
            .get(name)
            .map(|&id| self.element_postings[id as usize].len() as u64)
            .unwrap_or(0)
    }

    /// Elements named `name` strictly inside `origin`'s subtree, in
    /// document order: the posting list sliced to the origin's interval
    /// label by two binary searches.
    pub fn descendants_named(&self, origin: NodeId, name: &QName) -> &[NodeId] {
        let Some(&name_id) = self.by_name.get(name) else {
            return &[];
        };
        let postings = &self.element_postings[name_id as usize];
        let end = self.subtree_end[origin as usize];
        let lo = postings.partition_point(|&id| id <= origin);
        let hi = postings.partition_point(|&id| id <= end);
        &postings[lo..hi]
    }

    /// Whether equality lookups on `child`'s leaf values are exact:
    /// every element with that name is an indexable leaf and, for
    /// numeric probes, every value parses as `xs:double` (so the tree
    /// walk could not have raised a cast error the index skips).
    pub fn value_eq_applicable(&self, child: &QName, numeric: bool) -> bool {
        match self.by_name.get(child) {
            Some(&id) => {
                let vi = &self.values[id as usize];
                vi.complete && (!numeric || vi.all_numeric)
            }
            // A name absent from the document has no leaves to miss.
            None => true,
        }
    }

    /// Parents of `child` leaves whose string value equals `value`,
    /// sorted in document order and deduplicated. `None` when the value
    /// index cannot answer exactly (some element of that name is not an
    /// indexable leaf).
    pub fn parents_by_string_eq(&self, child: &QName, value: &str) -> Option<Vec<NodeId>> {
        let &name_id = self.by_name.get(child)?;
        let vi = &self.values[name_id as usize];
        if !vi.complete {
            return None;
        }
        let leaves = vi.by_string.get(value).map(Vec::as_slice).unwrap_or(&[]);
        Some(self.parents_of(leaves))
    }

    /// Parents of `child` leaves whose value compares `eq` to `value`
    /// under `xs:double` semantics. `None` when the numeric index cannot
    /// answer exactly (non-leaf elements, or some value outside the
    /// double lexical space — the walk would raise where the index
    /// would silently skip).
    pub fn parents_by_numeric_eq(&self, child: &QName, value: f64) -> Option<Vec<NodeId>> {
        let &name_id = self.by_name.get(child)?;
        let vi = &self.values[name_id as usize];
        if !vi.complete || !vi.all_numeric {
            return None;
        }
        if value.is_nan() {
            return Some(Vec::new());
        }
        let lo = vi
            .numeric
            .partition_point(|&(v, _)| v.total_cmp(&value).is_lt());
        let hi = vi
            .numeric
            .partition_point(|&(v, _)| v.total_cmp(&value).is_le());
        let leaves: Vec<NodeId> = vi.numeric[lo..hi].iter().map(|&(_, id)| id).collect();
        Some(self.parents_of(&leaves))
    }

    fn parents_of(&self, leaves: &[NodeId]) -> Vec<NodeId> {
        let mut parents: Vec<NodeId> = leaves
            .iter()
            .filter_map(|&id| self.doc.handle(id).and_then(|n| n.parent()).map(|p| p.id()))
            .collect();
        parents.sort_unstable();
        parents.dedup();
        parents
    }

    /// Per-name statistics for this document.
    pub fn name_stats(&self, name: &QName) -> Option<NameStats> {
        let &id = self.by_name.get(name)?;
        let vi = &self.values[id as usize];
        Some(NameStats {
            elements: self.element_postings[id as usize].len() as u64,
            all_leaf: vi.complete,
            all_numeric: vi.complete && vi.all_numeric,
            distinct_values: if vi.complete {
                vi.by_string.len() as u64
            } else {
                0
            },
        })
    }

    /// Count of `parent/child` element steps (per-path cardinality).
    pub fn step_count(&self, parent: &QName, child: &QName) -> u64 {
        match (self.by_name.get(parent), self.by_name.get(child)) {
            (Some(&p), Some(&c)) => self.step_counts.get(&(p, c)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Total element count.
    pub fn total_elements(&self) -> u64 {
        self.total_elements
    }

    /// Approximate heap footprint of the index structures (labels,
    /// dictionaries, postings, value indexes) — exported on `/metrics`.
    pub fn index_bytes(&self) -> u64 {
        let mut total = (self.subtree_end.len() * std::mem::size_of::<NodeId>()) as u64;
        for name in &self.names {
            total += name.local_part().len() as u64 + std::mem::size_of::<QName>() as u64;
        }
        for postings in &self.element_postings {
            total += (postings.len() * std::mem::size_of::<NodeId>()) as u64;
        }
        for vi in &self.values {
            total += vi.bytes();
        }
        total += (self.step_counts.len() * std::mem::size_of::<((NameId, NameId), u64)>()) as u64;
        total
    }

    /// Iterate the interned element names.
    pub fn names(&self) -> impl Iterator<Item = &QName> {
        self.names.iter()
    }
}

/// The indexable-leaf value of an element: its text content when the
/// children are exactly one text node, `""` when it has no children at
/// all. `None` for anything with element/comment/PI content (their
/// string values concatenate across structure the index does not model).
fn leaf_value(node: &NodeHandle) -> Option<Arc<str>> {
    let mut children = node.children();
    match children.next() {
        None => Some(Arc::from("")),
        Some(first) if first.kind() == NodeKind::Text && children.next().is_none() => {
            Some(Arc::from(first.raw_text().unwrap_or("")))
        }
        Some(_) => None,
    }
}

/// Statistics merged across every store in a catalog: what the
/// optimizer consults at plan time to choose index scan vs. tree walk.
#[derive(Debug, Default, Clone)]
pub struct CatalogStatistics {
    version: u64,
    total_elements: u64,
    per_name: HashMap<QName, NameStats>,
}

impl CatalogStatistics {
    /// Merge the per-document statistics of `stores`. The catalog
    /// version is the maximum store version (so any rebuild moves it).
    pub fn from_stores<'a>(stores: impl IntoIterator<Item = &'a DocumentStore>) -> Self {
        let mut merged = CatalogStatistics::default();
        for store in stores {
            merged.version = merged.version.max(store.version());
            merged.total_elements += store.total_elements();
            for name in store.names() {
                let stats = store.name_stats(name).expect("interned name has stats");
                let entry = merged
                    .per_name
                    .entry(name.clone())
                    .or_insert_with(|| NameStats {
                        elements: 0,
                        all_leaf: true,
                        all_numeric: true,
                        distinct_values: 0,
                    });
                entry.elements += stats.elements;
                entry.all_leaf &= stats.all_leaf;
                entry.all_numeric &= stats.all_numeric;
                entry.distinct_values += stats.distinct_values;
            }
        }
        merged
    }

    /// The catalog version these statistics describe.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Elements with `name` across the catalog (0 when unseen).
    pub fn element_count(&self, name: &QName) -> u64 {
        self.per_name.get(name).map(|s| s.elements).unwrap_or(0)
    }

    /// Fraction of all elements a `descendant::name` scan selects.
    /// Unseen names select nothing.
    pub fn descendant_selectivity(&self, name: &QName) -> f64 {
        if self.total_elements == 0 {
            return 0.0;
        }
        self.element_count(name) as f64 / self.total_elements as f64
    }

    /// Whether an equality predicate on `child`'s content can be served
    /// exactly by the value index in every catalog document.
    pub fn value_eq_indexable(&self, child: &QName, numeric: bool) -> bool {
        match self.per_name.get(child) {
            Some(s) => s.all_leaf && (!numeric || s.all_numeric),
            None => true,
        }
    }

    /// Distinct leaf values of `child` summed across the catalog (the
    /// per-name ndv the estimator divides equality selectivities by).
    /// `None` when the name is unseen or some document's elements of
    /// that name are not indexable leaves — the sum would undercount.
    pub fn distinct_values(&self, child: &QName) -> Option<u64> {
        let s = self.per_name.get(child)?;
        (s.all_leaf && s.distinct_values > 0).then_some(s.distinct_values)
    }

    /// Total elements across the catalog.
    pub fn total_elements(&self) -> u64 {
        self.total_elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqa_xdm::DocumentBuilder;

    fn q(s: &str) -> QName {
        QName::local(s)
    }

    /// `<orders><order id="1"><item><price>10</price><tag>a</tag></item>
    ///  <item><price>20</price><tag>b</tag></item></order>
    ///  <order id="2"><item><price>10.0</price><tag>a</tag></item></order></orders>`
    fn orders_doc() -> Arc<Document> {
        let mut b = DocumentBuilder::new();
        b.start_element(q("orders"));
        b.start_element(q("order"));
        b.attribute(q("id"), "1");
        b.start_element(q("item"));
        b.start_element(q("price")).text("10").end_element();
        b.start_element(q("tag")).text("a").end_element();
        b.end_element();
        b.start_element(q("item"));
        b.start_element(q("price")).text("20").end_element();
        b.start_element(q("tag")).text("b").end_element();
        b.end_element();
        b.end_element();
        b.start_element(q("order"));
        b.attribute(q("id"), "2");
        b.start_element(q("item"));
        b.start_element(q("price")).text("10.0").end_element();
        b.start_element(q("tag")).text("a").end_element();
        b.end_element();
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn subtree_labels_cover_exactly_the_descendants() {
        let doc = orders_doc();
        let store = DocumentStore::build(&doc);
        // Every node's descendants (plus attributes) fall inside its
        // interval label, and nothing else does.
        for id in 0..doc.len() as NodeId {
            let node = doc.handle(id).unwrap();
            let end = store.subtree_end(id);
            let mut member = vec![false; doc.len()];
            member[id as usize] = true;
            let mut stack = vec![node.clone()];
            while let Some(n) = stack.pop() {
                for c in n.children().chain(n.attributes()) {
                    member[c.id() as usize] = true;
                    stack.push(c);
                }
            }
            for other in 0..doc.len() as NodeId {
                let inside = other >= id && other <= end;
                assert_eq!(
                    member[other as usize], inside,
                    "node {other} vs interval [{id}, {end}]"
                );
            }
        }
    }

    #[test]
    fn descendants_named_matches_tree_walk() {
        let doc = orders_doc();
        let store = DocumentStore::build(&doc);
        for name in ["orders", "order", "item", "price", "tag", "absent"] {
            for origin in 0..doc.len() as NodeId {
                let node = doc.handle(origin).unwrap();
                let walked: Vec<NodeId> = node
                    .descendants()
                    .filter(|n| n.kind() == NodeKind::Element && n.name() == Some(&q(name)))
                    .map(|n| n.id())
                    .collect();
                let indexed: Vec<NodeId> = store.descendants_named(origin, &q(name)).to_vec();
                assert_eq!(walked, indexed, "//{name} from node {origin}");
            }
        }
    }

    #[test]
    fn value_index_answers_string_and_numeric_probes() {
        let doc = orders_doc();
        let store = DocumentStore::build(&doc);
        // String probe on tag: both "a" items.
        let parents = store.parents_by_string_eq(&q("tag"), "a").unwrap();
        assert_eq!(parents.len(), 2);
        assert!(parents
            .iter()
            .all(|&p| doc.handle(p).unwrap().name() == Some(&q("item"))));
        assert!(store
            .parents_by_string_eq(&q("tag"), "missing")
            .unwrap()
            .is_empty());
        // Numeric probe on price: "10" and "10.0" both equal 10.
        let parents = store.parents_by_numeric_eq(&q("price"), 10.0).unwrap();
        assert_eq!(parents.len(), 2);
        assert_eq!(
            store
                .parents_by_numeric_eq(&q("price"), 20.0)
                .unwrap()
                .len(),
            1
        );
        assert!(store
            .parents_by_numeric_eq(&q("price"), f64::NAN)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn non_leaf_names_refuse_value_lookups() {
        let doc = orders_doc();
        let store = DocumentStore::build(&doc);
        // `item` has element content: not an indexable leaf.
        assert!(store.parents_by_string_eq(&q("item"), "x").is_none());
        assert!(!store.value_eq_applicable(&q("item"), false));
        // `tag` is all-leaf but not numeric.
        assert!(store.value_eq_applicable(&q("tag"), false));
        assert!(!store.value_eq_applicable(&q("tag"), true));
        assert!(store.parents_by_numeric_eq(&q("tag"), 1.0).is_none());
        // Absent names cannot hide anything.
        assert!(store.value_eq_applicable(&q("absent"), true));
    }

    #[test]
    fn mixed_leaf_and_structured_content_disables_the_name() {
        let mut b = DocumentBuilder::new();
        b.start_element(q("r"));
        b.start_element(q("v")).text("1").end_element();
        b.start_element(q("v"));
        b.start_element(q("inner")).text("2").end_element();
        b.end_element();
        b.end_element();
        let store = DocumentStore::build(&b.finish());
        assert!(store.parents_by_string_eq(&q("v"), "1").is_none());
        let stats = store.name_stats(&q("v")).unwrap();
        assert!(!stats.all_leaf);
        assert_eq!(stats.elements, 2);
    }

    #[test]
    fn empty_elements_index_as_empty_string_and_break_numeric() {
        let mut b = DocumentBuilder::new();
        b.start_element(q("r"));
        b.start_element(q("v")).end_element();
        b.start_element(q("v")).text("3").end_element();
        b.end_element();
        let store = DocumentStore::build(&b.finish());
        // "" does not parse as xs:double, so numeric probes must refuse.
        assert!(store.parents_by_numeric_eq(&q("v"), 3.0).is_none());
        assert_eq!(store.parents_by_string_eq(&q("v"), "").unwrap().len(), 1);
    }

    #[test]
    fn statistics_report_cardinalities_and_steps() {
        let doc = orders_doc();
        let store = DocumentStore::build(&doc);
        assert_eq!(store.element_count(&q("item")), 3);
        assert_eq!(store.element_count(&q("price")), 3);
        assert_eq!(store.element_count(&q("absent")), 0);
        assert_eq!(store.step_count(&q("item"), &q("price")), 3);
        assert_eq!(store.step_count(&q("order"), &q("item")), 3);
        assert_eq!(store.step_count(&q("order"), &q("price")), 0);
        assert_eq!(store.total_elements(), 12);
        let stats = store.name_stats(&q("price")).unwrap();
        assert!(stats.all_leaf && stats.all_numeric);
        assert_eq!(stats.distinct_values, 3);
    }

    #[test]
    fn versions_are_monotonic_and_catalog_stats_merge() {
        let d1 = orders_doc();
        let d2 = orders_doc();
        let s1 = DocumentStore::build(&d1);
        let s2 = DocumentStore::build(&d2);
        assert!(s2.version() > s1.version());
        let merged = CatalogStatistics::from_stores([&s1, &s2]);
        assert_eq!(merged.version(), s2.version());
        assert_eq!(merged.element_count(&q("price")), 6);
        assert_eq!(merged.total_elements(), 24);
        assert!(merged.value_eq_indexable(&q("price"), true));
        assert!(merged.value_eq_indexable(&q("tag"), false));
        assert!(!merged.value_eq_indexable(&q("tag"), true));
        assert!(!merged.value_eq_indexable(&q("item"), false));
        assert!(merged.value_eq_indexable(&q("absent"), true));
        let sel = merged.descendant_selectivity(&q("item"));
        assert!((sel - 0.25).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn index_bytes_is_nonzero_and_grows_with_content() {
        let small = DocumentStore::build(&orders_doc());
        let mut b = DocumentBuilder::new();
        b.start_element(q("r"));
        for i in 0..100 {
            b.start_element(q("v")).text(&i.to_string()).end_element();
        }
        b.end_element();
        let big = DocumentStore::build(&b.finish());
        assert!(small.index_bytes() > 0);
        assert!(big.index_bytes() > small.index_bytes());
    }
}
