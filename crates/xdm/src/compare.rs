//! Value comparison, general comparison, and `fn:deep-equal`.
//!
//! `fn:deep-equal` is load-bearing for this reproduction: the paper's
//! `group by` uses it as the *default grouping equality* (§3.3), with the
//! two documented properties — permutations of a sequence are distinct
//! values, and the empty sequence is a distinct value.

use crate::decimal::Decimal;
use crate::error::{XdmError, XdmResult};
use crate::item::{AtomicType, AtomicValue, Item};
use crate::node::{NodeHandle, NodeKind};
use std::cmp::Ordering;

/// The six comparison operators shared by value (`eq`) and general (`=`)
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `eq` / `=`
    Eq,
    /// `ne` / `!=`
    Ne,
    /// `lt` / `<`
    Lt,
    /// `le` / `<=`
    Le,
    /// `gt` / `>`
    Gt,
    /// `ge` / `>=`
    Ge,
}

impl CompOp {
    /// Apply the operator to an `Ordering`.
    pub fn matches(&self, ord: Ordering) -> bool {
        match self {
            CompOp::Eq => ord == Ordering::Equal,
            CompOp::Ne => ord != Ordering::Equal,
            CompOp::Lt => ord == Ordering::Less,
            CompOp::Le => ord != Ordering::Greater,
            CompOp::Gt => ord == Ordering::Greater,
            CompOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Result of comparing two atomics: an ordering, or incomparable because
/// one side is NaN (every operator except `ne` is then false).
enum PartialComparison {
    Ordered(Ordering),
    NaN,
}

/// Compare two atomic values under *value comparison* rules
/// (`eq`, `lt`, ...): untyped operands are treated as strings.
pub fn value_compare(a: &AtomicValue, b: &AtomicValue, op: CompOp) -> XdmResult<bool> {
    match partial_compare(a, b)? {
        PartialComparison::Ordered(ord) => Ok(op.matches(ord)),
        PartialComparison::NaN => Ok(op == CompOp::Ne),
    }
}

/// Total ordering used by `order by` and `min`/`max`: NaN sorts before
/// every other number (and equal to itself).
pub fn sort_compare(a: &AtomicValue, b: &AtomicValue) -> XdmResult<Ordering> {
    let a_nan = matches!(a, AtomicValue::Double(d) if d.is_nan());
    let b_nan = matches!(b, AtomicValue::Double(d) if d.is_nan());
    match (a_nan, b_nan) {
        (true, true) => Ok(Ordering::Equal),
        (true, false) => Ok(Ordering::Less),
        (false, true) => Ok(Ordering::Greater),
        (false, false) => match partial_compare(a, b)? {
            PartialComparison::Ordered(ord) => Ok(ord),
            PartialComparison::NaN => unreachable!("NaN handled above"),
        },
    }
}

/// Pairwise comparison with numeric promotion. Untyped values compare as
/// strings (value-comparison semantics); general comparison casts its
/// untyped operands *before* calling this.
fn partial_compare(a: &AtomicValue, b: &AtomicValue) -> XdmResult<PartialComparison> {
    use AtomicValue as V;
    let ord = match (a, b) {
        // Numeric tower.
        (V::Integer(x), V::Integer(y)) => x.cmp(y),
        (V::Decimal(x), V::Decimal(y)) => x.cmp(y),
        (V::Integer(x), V::Decimal(y)) => Decimal::from_i64(*x).cmp(y),
        (V::Decimal(x), V::Integer(y)) => x.cmp(&Decimal::from_i64(*y)),
        (V::Double(x), y) if y.is_numeric() => return double_cmp(*x, y.to_double()?),
        (x, V::Double(y)) if x.is_numeric() => return double_cmp(x.to_double()?, *y),
        // Strings and untyped (codepoint collation).
        (V::String(x) | V::Untyped(x), V::String(y) | V::Untyped(y)) => x.cmp(y),
        (V::Boolean(x), V::Boolean(y)) => x.cmp(y),
        (V::DateTime(x), V::DateTime(y)) => x.cmp(y),
        (V::Date(x), V::Date(y)) => x.cmp(y),
        _ => {
            return Err(XdmError::type_error(format!(
                "cannot compare {} with {}",
                a.atomic_type(),
                b.atomic_type()
            )))
        }
    };
    Ok(PartialComparison::Ordered(ord))
}

fn double_cmp(x: f64, y: f64) -> XdmResult<PartialComparison> {
    Ok(match x.partial_cmp(&y) {
        Some(ord) => PartialComparison::Ordered(ord),
        None => PartialComparison::NaN,
    })
}

/// General comparison (`=`, `<`, ...): existential over the atomized
/// operands with the untyped-casting rules of XQuery 1.0 —
/// untyped vs numeric casts the untyped side to `xs:double`,
/// untyped vs untyped/string compares as strings, untyped vs other typed
/// casts the untyped side to the other side's type.
pub fn general_compare(lhs: &[Item], rhs: &[Item], op: CompOp) -> XdmResult<bool> {
    for l in lhs {
        let la = l.atomize();
        for r in rhs {
            let ra = r.atomize();
            let (la2, ra2) = general_cast_pair(&la, &ra)?;
            if value_compare(&la2, &ra2, op)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

fn general_cast_pair(a: &AtomicValue, b: &AtomicValue) -> XdmResult<(AtomicValue, AtomicValue)> {
    let at = a.atomic_type();
    let bt = b.atomic_type();
    match (at, bt) {
        (AtomicType::Untyped, AtomicType::Untyped) => Ok((a.clone(), b.clone())),
        (AtomicType::Untyped, _) => Ok((a.cast_untyped_as(bt)?, b.clone())),
        (_, AtomicType::Untyped) => Ok((a.clone(), b.cast_untyped_as(at)?)),
        _ => Ok((a.clone(), b.clone())),
    }
}

/// `fn:deep-equal` over two sequences. Never raises: incomparable items
/// simply compare unequal, and NaN is deep-equal to NaN (per F&O).
pub fn deep_equal(a: &[Item], b: &[Item]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| item_deep_equal(x, y))
}

fn item_deep_equal(a: &Item, b: &Item) -> bool {
    match (a, b) {
        (Item::Atomic(x), Item::Atomic(y)) => atomic_deep_equal(x, y),
        (Item::Node(x), Item::Node(y)) => node_deep_equal(x, y),
        _ => false,
    }
}

fn atomic_deep_equal(x: &AtomicValue, y: &AtomicValue) -> bool {
    // NaN = NaN for deep-equal purposes.
    if let (AtomicValue::Double(a), AtomicValue::Double(b)) = (x, y) {
        if a.is_nan() && b.is_nan() {
            return true;
        }
    }
    matches!(value_compare(x, y, CompOp::Eq), Ok(true))
}

/// Structural node equality per `fn:deep-equal`:
/// same kind; same name; elements additionally require equal attribute
/// *sets* and deep-equal child sequences with comments/PIs skipped.
pub fn node_deep_equal(a: &NodeHandle, b: &NodeHandle) -> bool {
    if a.kind() != b.kind() {
        return false;
    }
    match a.kind() {
        NodeKind::Document => children_deep_equal(a, b),
        NodeKind::Element => {
            if a.name() != b.name() {
                return false;
            }
            if !attribute_sets_equal(a, b) {
                return false;
            }
            children_deep_equal(a, b)
        }
        NodeKind::Attribute => a.name() == b.name() && a.string_value() == b.string_value(),
        NodeKind::Text | NodeKind::Comment => a.string_value() == b.string_value(),
        NodeKind::ProcessingInstruction => {
            a.name() == b.name() && a.string_value() == b.string_value()
        }
    }
}

fn attribute_sets_equal(a: &NodeHandle, b: &NodeHandle) -> bool {
    let a_attrs: Vec<NodeHandle> = a.attributes().collect();
    let b_attrs: Vec<NodeHandle> = b.attributes().collect();
    if a_attrs.len() != b_attrs.len() {
        return false;
    }
    // Attribute order is not significant.
    a_attrs.iter().all(|x| {
        b_attrs
            .iter()
            .any(|y| x.name() == y.name() && x.string_value() == y.string_value())
    })
}

fn children_deep_equal(a: &NodeHandle, b: &NodeHandle) -> bool {
    let significant = |n: &NodeHandle| {
        !matches!(
            n.kind(),
            NodeKind::Comment | NodeKind::ProcessingInstruction
        )
    };
    let ac: Vec<NodeHandle> = a.children().filter(significant).collect();
    let bc: Vec<NodeHandle> = b.children().filter(significant).collect();
    ac.len() == bc.len() && ac.iter().zip(&bc).all(|(x, y)| node_deep_equal(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datetime::{Date, DateTime};
    use crate::node::DocumentBuilder;
    use crate::qname::QName;

    fn q(s: &str) -> QName {
        QName::local(s)
    }

    fn elem(build: impl FnOnce(&mut DocumentBuilder)) -> NodeHandle {
        let mut b = DocumentBuilder::new();
        build(&mut b);
        b.finish().root().children().next().unwrap()
    }

    fn int(v: i64) -> AtomicValue {
        AtomicValue::Integer(v)
    }

    #[test]
    fn numeric_promotion_in_value_compare() {
        let d = AtomicValue::Decimal(Decimal::parse("2.5").unwrap());
        assert!(value_compare(&int(2), &d, CompOp::Lt).unwrap());
        assert!(value_compare(&AtomicValue::Double(2.5), &d, CompOp::Eq).unwrap());
        assert!(value_compare(&int(3), &AtomicValue::Double(2.5), CompOp::Gt).unwrap());
    }

    #[test]
    fn exact_decimal_integer_comparison_avoids_float() {
        // 2^63 - 1 vs a decimal one greater: exact comparison must see it.
        let big = int(i64::MAX);
        let bigger = AtomicValue::Decimal(Decimal::from_parts(i64::MAX as i128 + 1, 0));
        assert!(value_compare(&big, &bigger, CompOp::Lt).unwrap());
    }

    #[test]
    fn nan_comparisons() {
        let nan = AtomicValue::Double(f64::NAN);
        assert!(!value_compare(&nan, &nan, CompOp::Eq).unwrap());
        assert!(value_compare(&nan, &nan, CompOp::Ne).unwrap());
        assert!(!value_compare(&nan, &int(1), CompOp::Lt).unwrap());
        // but deep-equal says NaN = NaN, and sorting puts NaN first
        assert!(atomic_deep_equal(&nan, &AtomicValue::Double(f64::NAN)));
        assert_eq!(sort_compare(&nan, &int(1)).unwrap(), Ordering::Less);
        assert_eq!(sort_compare(&nan, &nan).unwrap(), Ordering::Equal);
    }

    #[test]
    fn untyped_compares_as_string_in_value_comparison() {
        let a = AtomicValue::untyped("10");
        let b = AtomicValue::untyped("9");
        // String comparison: "10" < "9".
        assert!(value_compare(&a, &b, CompOp::Lt).unwrap());
    }

    #[test]
    fn incomparable_types_error() {
        let s = AtomicValue::string("x");
        assert!(value_compare(&s, &int(1), CompOp::Eq).is_err());
        let d = AtomicValue::Date(Date::parse("2004-01-01").unwrap());
        let dt = AtomicValue::DateTime(DateTime::parse("2004-01-01T00:00:00").unwrap());
        assert!(value_compare(&d, &dt, CompOp::Eq).is_err());
    }

    #[test]
    fn general_compare_is_existential() {
        let lhs = vec![Item::from(1i64), Item::from(5i64)];
        let rhs = vec![Item::from(3i64), Item::from(5i64)];
        assert!(general_compare(&lhs, &rhs, CompOp::Eq).unwrap());
        assert!(general_compare(&lhs, &rhs, CompOp::Lt).unwrap());
        assert!(!general_compare(&[], &rhs, CompOp::Eq).unwrap());
        // = and != are simultaneously true (classic general-comparison quirk)
        assert!(general_compare(&lhs, &rhs, CompOp::Ne).unwrap());
    }

    #[test]
    fn general_compare_casts_untyped_to_double_against_numbers() {
        let node_like = vec![Item::Atomic(AtomicValue::untyped("10"))];
        let num = vec![Item::from(9i64)];
        // Numeric comparison: 10 > 9 (string comparison would say "10" < "9").
        assert!(general_compare(&node_like, &num, CompOp::Gt).unwrap());
    }

    #[test]
    fn general_compare_against_node_content() {
        let price = elem(|b| {
            b.start_element(q("price")).text("65.00").end_element();
        });
        let lhs = vec![Item::Node(price)];
        assert!(general_compare(&lhs, &[Item::from(65.0)], CompOp::Eq).unwrap());
        assert!(general_compare(&lhs, &[Item::from("65.00")], CompOp::Eq).unwrap());
    }

    #[test]
    fn deep_equal_sequences_are_order_sensitive() {
        let gray = Item::from("Gray");
        let reuter = Item::from("Reuter");
        let a = vec![gray.clone(), reuter.clone()];
        let b = vec![reuter, gray];
        assert!(
            !deep_equal(&a, &b),
            "permutations are distinct (paper §3.3)"
        );
        assert!(deep_equal(&a, &a.clone()));
    }

    #[test]
    fn deep_equal_empty_is_distinct_value() {
        assert!(deep_equal(&[], &[]));
        assert!(!deep_equal(&[], &[Item::from("x")]));
    }

    #[test]
    fn deep_equal_elements_by_structure() {
        let a = elem(|b| {
            b.start_element(q("author")).text("Jim Gray").end_element();
        });
        let a2 = elem(|b| {
            b.start_element(q("author")).text("Jim Gray").end_element();
        });
        let c = elem(|b| {
            b.start_element(q("author"))
                .text("Andreas Reuter")
                .end_element();
        });
        assert!(
            node_deep_equal(&a, &a2),
            "equal content, different identity"
        );
        assert!(!node_deep_equal(&a, &c));
        assert!(!a.is_same_node(&a2));
    }

    #[test]
    fn deep_equal_attributes_unordered() {
        let a = elem(|b| {
            b.start_element(q("r"));
            b.attribute(q("x"), "1").attribute(q("y"), "2");
            b.end_element();
        });
        let b2 = elem(|b| {
            b.start_element(q("r"));
            b.attribute(q("y"), "2").attribute(q("x"), "1");
            b.end_element();
        });
        assert!(node_deep_equal(&a, &b2));
        let c = elem(|b| {
            b.start_element(q("r"));
            b.attribute(q("x"), "1");
            b.end_element();
        });
        assert!(!node_deep_equal(&a, &c));
    }

    #[test]
    fn deep_equal_ignores_comments_inside_elements() {
        let a = elem(|b| {
            b.start_element(q("r"));
            b.comment("hi");
            b.start_element(q("v")).text("1").end_element();
            b.end_element();
        });
        let b2 = elem(|b| {
            b.start_element(q("r"));
            b.start_element(q("v")).text("1").end_element();
            b.end_element();
        });
        assert!(node_deep_equal(&a, &b2));
    }

    #[test]
    fn deep_equal_node_vs_atomic_is_false_not_error() {
        let n = elem(|b| {
            b.start_element(q("v")).text("1").end_element();
        });
        assert!(!deep_equal(&[Item::Node(n)], &[Item::from(1i64)]));
    }

    #[test]
    fn deep_equal_nested_structure() {
        let make = |inner: &str| {
            elem(|b| {
                b.start_element(q("categories"));
                b.start_element(q("software"));
                b.start_element(q(inner)).end_element();
                b.end_element();
                b.end_element();
            })
        };
        assert!(node_deep_equal(&make("db"), &make("db")));
        assert!(!node_deep_equal(&make("db"), &make("distributed")));
    }

    #[test]
    fn mixed_numeric_deep_equal() {
        assert!(atomic_deep_equal(&int(2), &AtomicValue::Double(2.0)));
        assert!(atomic_deep_equal(
            &AtomicValue::Decimal(Decimal::parse("2.0").unwrap()),
            &int(2)
        ));
        assert!(!atomic_deep_equal(&AtomicValue::string("2"), &int(2)));
    }
}
