//! Error type shared by the data-model layer.
//!
//! Errors carry a W3C-style error code (e.g. `XPTY0004`) so that engine
//! layers and tests can match on the class of failure the same way an
//! XQuery processor reports `err:XPTY0004`.

use std::fmt;

/// A W3C XQuery/XPath error code.
///
/// Only the codes the engine can actually raise are listed; the
/// `Other` variant covers implementation-specific conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Type error (e.g. comparing incomparable values, wrong argument type).
    XPTY0004,
    /// A sequence of more than one item where a singleton is required.
    XPTY0005,
    /// Undefined variable reference.
    XPST0008,
    /// Undefined function / wrong arity.
    XPST0017,
    /// Static syntax error.
    XPST0003,
    /// Invalid value for cast (e.g. unparsable number or date).
    FORG0001,
    /// Invalid argument to an aggregate function.
    FORG0006,
    /// `fn:zero-or-one` called with a sequence containing more than one item.
    FORG0003,
    /// `fn:one-or-more` called with an empty sequence.
    FORG0004,
    /// `fn:exactly-one` called with a non-singleton sequence.
    FORG0005,
    /// Division by zero.
    FOAR0001,
    /// Numeric overflow/underflow.
    FOAR0002,
    /// Invalid timezone or date/time component value.
    FODT0001,
    /// Unsupported normalization form / collation.
    FOCH0002,
    /// Dynamic error raised by `fn:error`.
    FOER0000,
    /// Implementation-specific error.
    Other,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::XPTY0004 => "XPTY0004",
            ErrorCode::XPTY0005 => "XPTY0005",
            ErrorCode::XPST0008 => "XPST0008",
            ErrorCode::XPST0017 => "XPST0017",
            ErrorCode::XPST0003 => "XPST0003",
            ErrorCode::FORG0001 => "FORG0001",
            ErrorCode::FORG0006 => "FORG0006",
            ErrorCode::FORG0003 => "FORG0003",
            ErrorCode::FORG0004 => "FORG0004",
            ErrorCode::FORG0005 => "FORG0005",
            ErrorCode::FOAR0001 => "FOAR0001",
            ErrorCode::FOAR0002 => "FOAR0002",
            ErrorCode::FODT0001 => "FODT0001",
            ErrorCode::FOCH0002 => "FOCH0002",
            ErrorCode::FOER0000 => "FOER0000",
            ErrorCode::Other => "XQAE0000",
        };
        f.write_str(s)
    }
}

/// A dynamic or type error raised while manipulating XDM values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XdmError {
    /// The W3C error code class.
    pub code: ErrorCode,
    /// Human-readable description of the failure.
    pub message: String,
}

impl XdmError {
    /// Create an error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        XdmError {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for the ubiquitous type error `XPTY0004`.
    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::XPTY0004, message)
    }

    /// Shorthand for a cast/value error `FORG0001`.
    pub fn value_error(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::FORG0001, message)
    }
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for XdmError {}

/// Convenient result alias for XDM operations.
pub type XdmResult<T> = Result<T, XdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_message() {
        let e = XdmError::new(ErrorCode::FOAR0001, "division by zero");
        assert_eq!(e.to_string(), "[FOAR0001] division by zero");
    }

    #[test]
    fn type_error_shorthand_uses_xpty0004() {
        assert_eq!(XdmError::type_error("x").code, ErrorCode::XPTY0004);
    }

    #[test]
    fn value_error_shorthand_uses_forg0001() {
        assert_eq!(XdmError::value_error("x").code, ErrorCode::FORG0001);
    }

    #[test]
    fn codes_display_as_w3c_names() {
        assert_eq!(ErrorCode::XPST0008.to_string(), "XPST0008");
        assert_eq!(ErrorCode::Other.to_string(), "XQAE0000");
    }
}
