//! An `xs:decimal` implementation with exact arithmetic.
//!
//! XQuery requires decimal arithmetic to be exact (unlike `xs:double`),
//! which matters for the paper's price/discount computations. We store a
//! decimal as a 128-bit signed mantissa plus a decimal scale (number of
//! digits after the point). The scale is capped at [`MAX_SCALE`]; division
//! produces at most `MAX_SCALE` fractional digits, matching the W3C
//! requirement of an implementation-defined minimum of 18 total digits.

use crate::error::{ErrorCode, XdmError, XdmResult};
use std::cmp::Ordering;
use std::fmt;

/// Maximum number of fractional digits retained by arithmetic.
pub const MAX_SCALE: u32 = 18;

/// An exact decimal number: `mantissa * 10^(-scale)`.
///
/// The representation is normalized so that either `scale == 0` or the
/// mantissa is not divisible by 10 — this gives a canonical form with a
/// unique `(mantissa, scale)` per numeric value, making `Eq`/`Hash`
/// derivable.
///
/// ```
/// use xqa_xdm::Decimal;
///
/// let price = Decimal::parse("65.00").unwrap();
/// let discount = Decimal::parse("5.50").unwrap();
/// let net = price.checked_sub(&discount).unwrap();
/// assert_eq!(net.to_string(), "59.5");
/// // exact, unlike f64:
/// let a = Decimal::parse("0.1").unwrap();
/// let b = Decimal::parse("0.2").unwrap();
/// assert_eq!(a.checked_add(&b).unwrap(), Decimal::parse("0.3").unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    mantissa: i128,
    scale: u32,
}

impl Decimal {
    /// Zero.
    pub const ZERO: Decimal = Decimal {
        mantissa: 0,
        scale: 0,
    };
    /// One.
    pub const ONE: Decimal = Decimal {
        mantissa: 1,
        scale: 0,
    };

    /// Build a decimal from a raw mantissa and scale, normalizing
    /// trailing zeros away.
    pub fn from_parts(mantissa: i128, scale: u32) -> Decimal {
        let mut m = mantissa;
        let mut s = scale;
        while s > 0 && m % 10 == 0 {
            m /= 10;
            s -= 1;
        }
        if m == 0 {
            s = 0;
        }
        Decimal {
            mantissa: m,
            scale: s,
        }
    }

    /// The raw mantissa (after normalization).
    pub fn mantissa(&self) -> i128 {
        self.mantissa
    }

    /// The number of fractional digits (after normalization).
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// True when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// True when the value is an integer (no fractional part).
    pub fn is_integer(&self) -> bool {
        self.scale == 0
    }

    /// Parse the `xs:decimal` lexical form: optional sign, digits,
    /// optional point and fraction digits. Scientific notation is *not*
    /// part of the decimal lexical space.
    pub fn parse(s: &str) -> XdmResult<Decimal> {
        let t = s.trim();
        if t.is_empty() {
            return Err(XdmError::value_error("empty string is not an xs:decimal"));
        }
        let bytes = t.as_bytes();
        let mut i = 0;
        let negative = match bytes[0] {
            b'-' => {
                i = 1;
                true
            }
            b'+' => {
                i = 1;
                false
            }
            _ => false,
        };
        let mut mantissa: i128 = 0;
        let mut scale: u32 = 0;
        let mut seen_digit = false;
        let mut seen_point = false;
        while i < bytes.len() {
            match bytes[i] {
                b'0'..=b'9' => {
                    seen_digit = true;
                    if seen_point && scale >= MAX_SCALE {
                        // Silently truncate ultra-long fractions; exactness
                        // beyond 18 digits is outside our supported space.
                        i += 1;
                        continue;
                    }
                    mantissa = mantissa
                        .checked_mul(10)
                        .and_then(|m| m.checked_add((bytes[i] - b'0') as i128))
                        .ok_or_else(|| {
                            XdmError::new(
                                ErrorCode::FOAR0002,
                                format!("decimal overflow parsing {t:?}"),
                            )
                        })?;
                    if seen_point {
                        scale += 1;
                    }
                }
                b'.' if !seen_point => seen_point = true,
                _ => {
                    return Err(XdmError::value_error(format!(
                        "invalid xs:decimal literal {t:?}"
                    )));
                }
            }
            i += 1;
        }
        if !seen_digit {
            return Err(XdmError::value_error(format!(
                "invalid xs:decimal literal {t:?}"
            )));
        }
        if negative {
            mantissa = -mantissa;
        }
        Ok(Decimal::from_parts(mantissa, scale))
    }

    /// Rescale so that the value has exactly `scale` fractional digits.
    /// Panics if the new scale would lose precision (callers align to the
    /// *larger* scale of two operands, which is always lossless).
    fn with_scale(&self, scale: u32) -> XdmResult<i128> {
        debug_assert!(scale >= self.scale);
        let factor = 10i128
            .checked_pow(scale - self.scale)
            .ok_or_else(|| XdmError::new(ErrorCode::FOAR0002, "decimal scale overflow"))?;
        self.mantissa
            .checked_mul(factor)
            .ok_or_else(|| XdmError::new(ErrorCode::FOAR0002, "decimal overflow"))
    }

    fn align(a: &Decimal, b: &Decimal) -> XdmResult<(i128, i128, u32)> {
        let scale = a.scale.max(b.scale);
        Ok((a.with_scale(scale)?, b.with_scale(scale)?, scale))
    }

    /// Exact addition.
    pub fn checked_add(&self, other: &Decimal) -> XdmResult<Decimal> {
        let (a, b, scale) = Decimal::align(self, other)?;
        let m = a
            .checked_add(b)
            .ok_or_else(|| XdmError::new(ErrorCode::FOAR0002, "decimal overflow in addition"))?;
        Ok(Decimal::from_parts(m, scale))
    }

    /// Exact subtraction.
    pub fn checked_sub(&self, other: &Decimal) -> XdmResult<Decimal> {
        self.checked_add(&other.neg())
    }

    /// Exact multiplication.
    pub fn checked_mul(&self, other: &Decimal) -> XdmResult<Decimal> {
        let m = self.mantissa.checked_mul(other.mantissa).ok_or_else(|| {
            XdmError::new(ErrorCode::FOAR0002, "decimal overflow in multiplication")
        })?;
        Ok(Decimal::from_parts(m, self.scale + other.scale))
    }

    /// Division with up to [`MAX_SCALE`] fractional digits
    /// (round-half-to-even on the final digit).
    pub fn checked_div(&self, other: &Decimal) -> XdmResult<Decimal> {
        if other.is_zero() {
            return Err(XdmError::new(
                ErrorCode::FOAR0001,
                "decimal division by zero",
            ));
        }
        // Compute self/other at MAX_SCALE digits of precision:
        // result = mantissa_a * 10^(MAX_SCALE + scale_b - scale_a) / mantissa_b
        let shift = MAX_SCALE as i64 + other.scale as i64 - self.scale as i64;
        let (num, denom) = if shift >= 0 {
            let factor = 10i128.checked_pow(shift as u32).ok_or_else(|| {
                XdmError::new(ErrorCode::FOAR0002, "decimal overflow in division")
            })?;
            (
                self.mantissa.checked_mul(factor).ok_or_else(|| {
                    XdmError::new(ErrorCode::FOAR0002, "decimal overflow in division")
                })?,
                other.mantissa,
            )
        } else {
            let factor = 10i128.checked_pow((-shift) as u32).ok_or_else(|| {
                XdmError::new(ErrorCode::FOAR0002, "decimal overflow in division")
            })?;
            (
                self.mantissa,
                other.mantissa.checked_mul(factor).ok_or_else(|| {
                    XdmError::new(ErrorCode::FOAR0002, "decimal overflow in division")
                })?,
            )
        };
        let q = num / denom;
        let r = num % denom;
        // round half to even
        let q = round_half_even(q, r, denom);
        Ok(Decimal::from_parts(q, MAX_SCALE))
    }

    /// Integer division (`idiv`): truncates toward zero, returns an i128.
    pub fn checked_idiv(&self, other: &Decimal) -> XdmResult<i128> {
        if other.is_zero() {
            return Err(XdmError::new(
                ErrorCode::FOAR0001,
                "integer division by zero",
            ));
        }
        let (a, b, _) = Decimal::align(self, other)?;
        Ok(a / b)
    }

    /// Modulus (`mod`): `a - (a idiv b) * b`, sign follows the dividend.
    pub fn checked_rem(&self, other: &Decimal) -> XdmResult<Decimal> {
        if other.is_zero() {
            return Err(XdmError::new(ErrorCode::FOAR0001, "modulus by zero"));
        }
        let (a, b, scale) = Decimal::align(self, other)?;
        Ok(Decimal::from_parts(a % b, scale))
    }

    /// Negation.
    pub fn neg(&self) -> Decimal {
        Decimal {
            mantissa: -self.mantissa,
            scale: self.scale,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Decimal {
        Decimal {
            mantissa: self.mantissa.abs(),
            scale: self.scale,
        }
    }

    /// `fn:floor` — largest integer not greater than the value.
    pub fn floor(&self) -> Decimal {
        if self.scale == 0 {
            return *self;
        }
        let factor = 10i128.pow(self.scale);
        let mut q = self.mantissa / factor;
        if self.mantissa < 0 && self.mantissa % factor != 0 {
            q -= 1;
        }
        Decimal::from_parts(q, 0)
    }

    /// `fn:ceiling` — smallest integer not less than the value.
    pub fn ceiling(&self) -> Decimal {
        if self.scale == 0 {
            return *self;
        }
        let factor = 10i128.pow(self.scale);
        let mut q = self.mantissa / factor;
        if self.mantissa > 0 && self.mantissa % factor != 0 {
            q += 1;
        }
        Decimal::from_parts(q, 0)
    }

    /// `fn:round` — round half away from zero (per F&O for decimals).
    pub fn round(&self) -> Decimal {
        self.round_to(0)
    }

    /// Round to `digits` fractional digits, half away from zero.
    pub fn round_to(&self, digits: u32) -> Decimal {
        if self.scale <= digits {
            return *self;
        }
        let factor = 10i128.pow(self.scale - digits);
        let q = self.mantissa / factor;
        let r = self.mantissa % factor;
        let half = factor / 2;
        let q = if r.abs() >= half {
            if self.mantissa >= 0 {
                q + 1
            } else {
                q - 1
            }
        } else {
            q
        };
        Decimal::from_parts(q, digits)
    }

    /// Convert to `f64`, possibly losing precision.
    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.scale as i32)
    }

    /// Convert from an i64 integer.
    pub fn from_i64(v: i64) -> Decimal {
        Decimal::from_parts(v as i128, 0)
    }

    /// Convert from an `f64`, via its shortest display form (used for
    /// `xs:decimal(xs:double)` casts). Errors on NaN/Inf.
    pub fn from_f64(v: f64) -> XdmResult<Decimal> {
        if !v.is_finite() {
            return Err(XdmError::value_error(
                "cannot convert NaN or infinity to xs:decimal",
            ));
        }
        // `{:?}`/`{}` on f64 prints the shortest round-tripping form;
        // it may use exponent notation for extreme magnitudes.
        let s = format!("{v}");
        if let Some(epos) = s.find(['e', 'E']) {
            let (mant, exp) = s.split_at(epos);
            let exp: i32 = exp[1..]
                .parse()
                .map_err(|_| XdmError::value_error("bad double representation"))?;
            let d = Decimal::parse(mant)?;
            return d.shift10(exp);
        }
        Decimal::parse(&s)
    }

    /// Multiply by 10^exp exactly (errors on overflow or if precision
    /// would be lost below `MAX_SCALE`).
    fn shift10(&self, exp: i32) -> XdmResult<Decimal> {
        if exp >= 0 {
            let factor = 10i128
                .checked_pow(exp as u32)
                .ok_or_else(|| XdmError::new(ErrorCode::FOAR0002, "decimal overflow"))?;
            let m = self
                .mantissa
                .checked_mul(factor)
                .ok_or_else(|| XdmError::new(ErrorCode::FOAR0002, "decimal overflow"))?;
            Ok(Decimal::from_parts(m, self.scale))
        } else {
            let add = (-exp) as u32;
            if self.scale + add > 2 * MAX_SCALE {
                return Err(XdmError::new(ErrorCode::FOAR0002, "decimal underflow"));
            }
            Ok(Decimal::from_parts(self.mantissa, self.scale + add))
        }
    }

    /// Truncate to an i64 (toward zero), used for `xs:integer` casts.
    pub fn to_i64(&self) -> XdmResult<i64> {
        let factor = 10i128.pow(self.scale);
        let v = self.mantissa / factor;
        i64::try_from(v).map_err(|_| XdmError::new(ErrorCode::FOAR0002, "integer overflow"))
    }
}

/// Round `q` (quotient) given remainder `r` and divisor `d`, half to even.
fn round_half_even(q: i128, r: i128, d: i128) -> i128 {
    if r == 0 {
        return q;
    }
    let r2 = (r.abs()) * 2;
    let da = d.abs();
    let sign = if (r < 0) != (d < 0) { -1 } else { 1 };
    match r2.cmp(&da) {
        Ordering::Less => q,
        Ordering::Greater => q + sign,
        Ordering::Equal => {
            if q % 2 == 0 {
                q
            } else {
                q + sign
            }
        }
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare without materializing aligned mantissas when scales are
        // equal (the common case for money-like data).
        if self.scale == other.scale {
            return self.mantissa.cmp(&other.mantissa);
        }
        match Decimal::align(self, other) {
            Ok((a, b, _)) => a.cmp(&b),
            // Overflow during alignment: fall back to float comparison,
            // good enough for sorting astronomically mismatched scales.
            Err(_) => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let neg = self.mantissa < 0;
        let abs = self.mantissa.unsigned_abs();
        let factor = 10u128.pow(self.scale);
        let int = abs / factor;
        let frac = abs % factor;
        let frac_str = format!("{:0width$}", frac, width = self.scale as usize);
        if neg {
            write!(f, "-{int}.{frac_str}")
        } else {
            write!(f, "{int}.{frac_str}")
        }
    }
}

impl From<i64> for Decimal {
    fn from(v: i64) -> Self {
        Decimal::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        Decimal::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "59.95", "-0.5", "123456789.000000001"] {
            assert_eq!(d(s).to_string(), s);
        }
    }

    #[test]
    fn parse_normalizes_trailing_zeros() {
        assert_eq!(d("1.50"), d("1.5"));
        assert_eq!(d("1.50").to_string(), "1.5");
        assert_eq!(d("-0.0"), Decimal::ZERO);
        assert_eq!(d("0.000").to_string(), "0");
    }

    #[test]
    fn parse_accepts_leading_plus_and_bare_point_forms() {
        assert_eq!(d("+5"), d("5"));
        assert_eq!(d(".5"), d("0.5"));
        assert_eq!(d("5."), d("5"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "abc", "1.2.3", "1e5", "--2", "1,5"] {
            assert!(Decimal::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn addition_aligns_scales() {
        assert_eq!(d("1.05").checked_add(&d("2.9")).unwrap(), d("3.95"));
        assert_eq!(d("-1.05").checked_add(&d("1.05")).unwrap(), Decimal::ZERO);
    }

    #[test]
    fn subtraction_matches_paper_net_price() {
        // price 65.00, discount 5.50 -> net 59.50
        assert_eq!(d("65.00").checked_sub(&d("5.50")).unwrap(), d("59.5"));
    }

    #[test]
    fn multiplication_is_exact() {
        assert_eq!(d("9.99").checked_mul(&d("10")).unwrap(), d("99.9"));
        assert_eq!(d("0.1").checked_mul(&d("0.1")).unwrap(), d("0.01"));
    }

    #[test]
    fn division_produces_bounded_scale() {
        assert_eq!(d("1").checked_div(&d("4")).unwrap(), d("0.25"));
        let third = d("1").checked_div(&d("3")).unwrap();
        assert_eq!(third.scale(), MAX_SCALE);
        assert_eq!(third.to_string(), "0.333333333333333333");
    }

    #[test]
    fn division_by_zero_errors() {
        let err = d("1").checked_div(&Decimal::ZERO).unwrap_err();
        assert_eq!(err.code, ErrorCode::FOAR0001);
    }

    #[test]
    fn idiv_truncates_toward_zero() {
        assert_eq!(d("7").checked_idiv(&d("2")).unwrap(), 3);
        assert_eq!(d("-7").checked_idiv(&d("2")).unwrap(), -3);
        assert_eq!(d("7.5").checked_idiv(&d("2.5")).unwrap(), 3);
    }

    #[test]
    fn rem_follows_dividend_sign() {
        assert_eq!(d("7").checked_rem(&d("2")).unwrap(), d("1"));
        assert_eq!(d("-7").checked_rem(&d("2")).unwrap(), d("-1"));
        assert_eq!(d("7.5").checked_rem(&d("2")).unwrap(), d("1.5"));
    }

    #[test]
    fn floor_and_ceiling() {
        assert_eq!(d("1.5").floor(), d("1"));
        assert_eq!(d("-1.5").floor(), d("-2"));
        assert_eq!(d("1.5").ceiling(), d("2"));
        assert_eq!(d("-1.5").ceiling(), d("-1"));
        assert_eq!(d("3").floor(), d("3"));
    }

    #[test]
    fn round_half_away_from_zero() {
        assert_eq!(d("2.5").round(), d("3"));
        assert_eq!(d("-2.5").round(), d("-3"));
        assert_eq!(d("2.4999").round(), d("2"));
        assert_eq!(d("1.25").round_to(1), d("1.3"));
    }

    #[test]
    fn ordering_across_scales() {
        assert!(d("1.5") < d("1.51"));
        assert!(d("-2") < d("1.5"));
        assert!(d("10") > d("9.999999"));
        assert_eq!(d("2.0").cmp(&d("2")), Ordering::Equal);
    }

    #[test]
    fn f64_round_trips_for_simple_values() {
        assert_eq!(Decimal::from_f64(0.25).unwrap(), d("0.25"));
        assert_eq!(Decimal::from_f64(-3.0).unwrap(), d("-3"));
        assert!(Decimal::from_f64(f64::NAN).is_err());
        assert!(Decimal::from_f64(f64::INFINITY).is_err());
        assert_eq!(Decimal::from_f64(1e3).unwrap(), d("1000"));
    }

    #[test]
    fn to_i64_truncates() {
        assert_eq!(d("3.99").to_i64().unwrap(), 3);
        assert_eq!(d("-3.99").to_i64().unwrap(), -3);
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let big = Decimal::from_parts(i128::MAX / 10, 0);
        assert!(big.checked_mul(&d("100")).is_err());
    }
}
