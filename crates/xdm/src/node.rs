//! Arena-backed node trees with node identity and document order.
//!
//! A [`Document`] owns a flat `Vec<NodeData>`; a node is addressed by its
//! index ([`NodeId`]). The builder emits nodes in document order
//! (preorder, attributes directly after their owner element), so document
//! order within a document is simply `NodeId` order. Each document also
//! carries a process-unique serial number, giving a stable, total
//! document order across documents — XQuery leaves inter-document order
//! implementation-defined but requires it to be stable within a query.
//!
//! A [`NodeHandle`] pairs an `Arc<Document>` with a `NodeId`; it is the
//! value stored inside [`crate::item::Item`]. Cloning a handle is a
//! refcount bump.

use crate::qname::QName;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Index of a node within its document's arena.
pub type NodeId = u32;

/// The seven XDM node kinds (namespace nodes are not modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The document root.
    Document,
    /// An element node.
    Element,
    /// An attribute node.
    Attribute,
    /// A text node.
    Text,
    /// A comment node.
    Comment,
    /// A processing instruction.
    ProcessingInstruction,
}

/// The data stored per node in the arena.
#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    /// Element/attribute name, or PI target.
    pub(crate) name: Option<QName>,
    /// Text content for text/comment/PI nodes, value for attributes.
    pub(crate) text: Option<Arc<str>>,
    /// Child *nodes* (attributes excluded) for document/element nodes.
    pub(crate) children: Vec<NodeId>,
    /// Attribute nodes for element nodes.
    pub(crate) attributes: Vec<NodeId>,
}

static DOC_SERIAL: AtomicU64 = AtomicU64::new(0);

/// An immutable XML document (or constructed tree fragment).
pub struct Document {
    serial: u64,
    nodes: Vec<NodeData>,
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Document")
            .field("serial", &self.serial)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Document {
    /// The process-unique serial number of this document.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// Number of nodes in the arena (including the document node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document contains only its document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id as usize]
    }

    /// Handle to the document node of `doc`.
    pub fn root(self: &Arc<Self>) -> NodeHandle {
        NodeHandle {
            doc: Arc::clone(self),
            id: 0,
        }
    }

    /// Handle to an arbitrary node by arena id. Node ids are stable for
    /// the lifetime of the (immutable) document, so an id recorded in an
    /// external index resolves to the identical node later.
    pub fn handle(self: &Arc<Self>, id: NodeId) -> Option<NodeHandle> {
        ((id as usize) < self.nodes.len()).then(|| NodeHandle {
            doc: Arc::clone(self),
            id,
        })
    }
}

/// A reference to one node: the owning document plus the node's id.
#[derive(Clone)]
pub struct NodeHandle {
    doc: Arc<Document>,
    id: NodeId,
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NodeHandle(doc#{}, n{}, {:?}",
            self.doc.serial,
            self.id,
            self.kind()
        )?;
        if let Some(n) = self.name() {
            write!(f, " <{n}>")?;
        }
        f.write_str(")")
    }
}

impl NodeHandle {
    fn data(&self) -> &NodeData {
        self.doc.data(self.id)
    }

    /// The owning document.
    pub fn document(&self) -> &Arc<Document> {
        &self.doc
    }

    /// This node's id within its document.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.data().kind
    }

    /// Element/attribute name or PI target.
    pub fn name(&self) -> Option<&QName> {
        self.data().name.as_ref()
    }

    /// The parent node, if any (attributes report their owner element).
    pub fn parent(&self) -> Option<NodeHandle> {
        self.data().parent.map(|id| NodeHandle {
            doc: Arc::clone(&self.doc),
            id,
        })
    }

    /// Node identity: same document *and* same arena slot.
    pub fn is_same_node(&self, other: &NodeHandle) -> bool {
        self.id == other.id && Arc::ptr_eq(&self.doc, &other.doc)
    }

    /// Total document order: by document serial, then arena index.
    pub fn document_order(&self, other: &NodeHandle) -> std::cmp::Ordering {
        (self.doc.serial, self.id).cmp(&(other.doc.serial, other.id))
    }

    /// Child nodes (attributes excluded), in document order.
    pub fn children(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        self.data().children.iter().map(move |&id| NodeHandle {
            doc: Arc::clone(&self.doc),
            id,
        })
    }

    /// Attribute nodes, in the order they were written.
    pub fn attributes(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        self.data().attributes.iter().map(move |&id| NodeHandle {
            doc: Arc::clone(&self.doc),
            id,
        })
    }

    /// The attribute with the given name, if present.
    pub fn attribute(&self, name: &QName) -> Option<NodeHandle> {
        self.attributes().find(|a| a.name() == Some(name))
    }

    /// Descendant nodes in document order (self excluded, attributes
    /// excluded), i.e. the `descendant::node()` axis.
    pub fn descendants(&self) -> Descendants {
        Descendants {
            doc: Arc::clone(&self.doc),
            stack: self.data().children.iter().rev().copied().collect(),
        }
    }

    /// Self plus descendants in document order (`descendant-or-self`).
    pub fn descendants_or_self(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        std::iter::once(self.clone()).chain(self.descendants())
    }

    /// Ancestor nodes, nearest first.
    pub fn ancestors(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        std::iter::successors(self.parent(), |n| n.parent())
    }

    /// The typed-value/string-value text content:
    /// - text/comment/PI/attribute: the stored text,
    /// - element/document: concatenation of descendant text nodes.
    pub fn string_value(&self) -> String {
        match self.kind() {
            NodeKind::Text
            | NodeKind::Comment
            | NodeKind::ProcessingInstruction
            | NodeKind::Attribute => self.data().text.as_deref().unwrap_or("").to_string(),
            NodeKind::Element | NodeKind::Document => {
                let mut out = String::new();
                self.accumulate_text(&mut out);
                out
            }
        }
    }

    fn accumulate_text(&self, out: &mut String) {
        for child in self.children() {
            match child.kind() {
                NodeKind::Text => out.push_str(child.data().text.as_deref().unwrap_or("")),
                NodeKind::Element => child.accumulate_text(out),
                _ => {}
            }
        }
    }

    /// Raw stored text (None for elements/documents).
    pub fn raw_text(&self) -> Option<&str> {
        self.data().text.as_deref()
    }

    /// Child *elements* with the given local name (fast path for the
    /// ubiquitous `child::name` step).
    pub fn child_elements_named<'a>(
        &'a self,
        name: &'a QName,
    ) -> impl Iterator<Item = NodeHandle> + 'a {
        self.children()
            .filter(move |c| c.kind() == NodeKind::Element && c.name() == Some(name))
    }
}

/// Iterator over descendants in document order.
pub struct Descendants {
    doc: Arc<Document>,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants {
    type Item = NodeHandle;

    fn next(&mut self) -> Option<NodeHandle> {
        let id = self.stack.pop()?;
        let data = self.doc.data(id);
        // Push children in reverse so the leftmost child pops first.
        self.stack.extend(data.children.iter().rev().copied());
        Some(NodeHandle {
            doc: Arc::clone(&self.doc),
            id,
        })
    }
}

impl Document {
    /// Build a document holding a single parentless attribute node (the
    /// result of a computed attribute constructor evaluated outside an
    /// element). Returns the attribute's handle.
    pub fn standalone_attribute(name: QName, value: impl Into<Arc<str>>) -> NodeHandle {
        let doc_node = NodeData {
            kind: NodeKind::Document,
            parent: None,
            name: None,
            text: None,
            children: Vec::new(),
            attributes: Vec::new(),
        };
        let attr = NodeData {
            kind: NodeKind::Attribute,
            parent: None,
            name: Some(name),
            text: Some(value.into()),
            children: Vec::new(),
            attributes: Vec::new(),
        };
        let doc = Arc::new(Document {
            serial: DOC_SERIAL.fetch_add(1, AtomicOrdering::Relaxed),
            nodes: vec![doc_node, attr],
        });
        NodeHandle { doc, id: 1 }
    }
}

/// Builds a [`Document`] in document order.
///
/// The builder enforces preorder construction: `start_element` /
/// `end_element` must nest properly, attributes may only be added
/// immediately after `start_element` (before any content).
///
/// ```
/// use xqa_xdm::{DocumentBuilder, QName};
///
/// let mut b = DocumentBuilder::new();
/// b.start_element(QName::local("book"));
/// b.attribute(QName::local("year"), "1993");
/// b.start_element(QName::local("title")).text("Transaction Processing").end_element();
/// b.end_element();
/// let doc = b.finish();
///
/// let book = doc.root().children().next().unwrap();
/// assert_eq!(book.string_value(), "Transaction Processing");
/// assert_eq!(book.attribute(&QName::local("year")).unwrap().string_value(), "1993");
/// ```
pub struct DocumentBuilder {
    nodes: Vec<NodeData>,
    /// Open element stack (document node is the bottom entry).
    open: Vec<NodeId>,
    /// True until the first non-attribute content of the innermost
    /// open element has been written.
    attrs_allowed: bool,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Start an empty document.
    pub fn new() -> DocumentBuilder {
        let doc_node = NodeData {
            kind: NodeKind::Document,
            parent: None,
            name: None,
            text: None,
            children: Vec::new(),
            attributes: Vec::new(),
        };
        DocumentBuilder {
            nodes: vec![doc_node],
            open: vec![0],
            attrs_allowed: false,
        }
    }

    fn push(&mut self, data: NodeData) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(data);
        id
    }

    fn current(&self) -> NodeId {
        *self.open.last().expect("builder always has an open node")
    }

    /// Open a new element as a child of the current node.
    pub fn start_element(&mut self, name: QName) -> &mut Self {
        let parent = self.current();
        let id = self.push(NodeData {
            kind: NodeKind::Element,
            parent: Some(parent),
            name: Some(name),
            text: None,
            children: Vec::new(),
            attributes: Vec::new(),
        });
        self.nodes[parent as usize].children.push(id);
        self.open.push(id);
        self.attrs_allowed = true;
        self
    }

    /// Add an attribute to the innermost open element.
    ///
    /// # Panics
    /// Panics if content has already been written to the element, or if
    /// no element is open — both indicate a builder-usage bug.
    pub fn attribute(&mut self, name: QName, value: impl Into<Arc<str>>) -> &mut Self {
        assert!(
            self.attrs_allowed,
            "attributes must precede element content"
        );
        let owner = self.current();
        assert!(
            self.nodes[owner as usize].kind == NodeKind::Element,
            "attributes require an open element"
        );
        let id = self.push(NodeData {
            kind: NodeKind::Attribute,
            parent: Some(owner),
            name: Some(name),
            text: Some(value.into()),
            children: Vec::new(),
            attributes: Vec::new(),
        });
        self.nodes[owner as usize].attributes.push(id);
        self
    }

    /// Append a text node. Adjacent text nodes are merged, and empty
    /// strings are ignored, per the XDM construction rules.
    pub fn text(&mut self, value: &str) -> &mut Self {
        if value.is_empty() {
            return self;
        }
        self.attrs_allowed = false;
        let parent = self.current();
        // Merge with a trailing text sibling if present.
        if let Some(&last) = self.nodes[parent as usize].children.last() {
            if self.nodes[last as usize].kind == NodeKind::Text {
                let existing = self.nodes[last as usize]
                    .text
                    .take()
                    .unwrap_or_else(|| Arc::from(""));
                let merged: Arc<str> = Arc::from(format!("{existing}{value}"));
                self.nodes[last as usize].text = Some(merged);
                return self;
            }
        }
        let id = self.push(NodeData {
            kind: NodeKind::Text,
            parent: Some(parent),
            name: None,
            text: Some(Arc::from(value)),
            children: Vec::new(),
            attributes: Vec::new(),
        });
        self.nodes[parent as usize].children.push(id);
        self
    }

    /// Append a comment node.
    pub fn comment(&mut self, value: impl Into<Arc<str>>) -> &mut Self {
        self.attrs_allowed = false;
        let parent = self.current();
        let id = self.push(NodeData {
            kind: NodeKind::Comment,
            parent: Some(parent),
            name: None,
            text: Some(value.into()),
            children: Vec::new(),
            attributes: Vec::new(),
        });
        self.nodes[parent as usize].children.push(id);
        self
    }

    /// Append a processing-instruction node.
    pub fn processing_instruction(
        &mut self,
        target: QName,
        value: impl Into<Arc<str>>,
    ) -> &mut Self {
        self.attrs_allowed = false;
        let parent = self.current();
        let id = self.push(NodeData {
            kind: NodeKind::ProcessingInstruction,
            parent: Some(parent),
            name: Some(target),
            text: Some(value.into()),
            children: Vec::new(),
            attributes: Vec::new(),
        });
        self.nodes[parent as usize].children.push(id);
        self
    }

    /// Close the innermost open element.
    ///
    /// # Panics
    /// Panics when no element is open.
    pub fn end_element(&mut self) -> &mut Self {
        assert!(self.open.len() > 1, "end_element with no open element");
        self.open.pop();
        self.attrs_allowed = false;
        self
    }

    /// Deep-copy `node` (and its subtree) as a child of the current node.
    /// This is how element constructors copy enclosed content: the copy
    /// receives fresh node identities, per the XQuery construction rules.
    pub fn copy_node(&mut self, node: &NodeHandle) -> &mut Self {
        match node.kind() {
            NodeKind::Document => {
                for child in node.children() {
                    self.copy_node(&child);
                }
            }
            NodeKind::Element => {
                self.start_element(node.name().expect("element has a name").clone());
                for attr in node.attributes() {
                    self.attribute(
                        attr.name().expect("attribute has a name").clone(),
                        attr.raw_text().unwrap_or(""),
                    );
                }
                for child in node.children() {
                    self.copy_node(&child);
                }
                self.end_element();
            }
            NodeKind::Attribute => {
                self.attribute(
                    node.name().expect("attribute has a name").clone(),
                    node.raw_text().unwrap_or(""),
                );
            }
            NodeKind::Text => {
                self.text(node.raw_text().unwrap_or(""));
            }
            NodeKind::Comment => {
                self.comment(node.raw_text().unwrap_or(""));
            }
            NodeKind::ProcessingInstruction => {
                self.processing_instruction(
                    node.name().expect("PI has a target").clone(),
                    node.raw_text().unwrap_or(""),
                );
            }
        }
        self
    }

    /// Finish construction, producing the immutable document.
    ///
    /// # Panics
    /// Panics if elements remain open.
    pub fn finish(self) -> Arc<Document> {
        assert!(
            self.open.len() == 1,
            "finish with {} unclosed element(s)",
            self.open.len() - 1
        );
        Arc::new(Document {
            serial: DOC_SERIAL.fetch_add(1, AtomicOrdering::Relaxed),
            nodes: self.nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> QName {
        QName::local(s)
    }

    /// Build the paper's first example instance.
    fn book_doc() -> Arc<Document> {
        let mut b = DocumentBuilder::new();
        b.start_element(q("book"));
        b.start_element(q("title"))
            .text("Transaction Processing")
            .end_element();
        b.start_element(q("author")).text("Jim Gray").end_element();
        b.start_element(q("author"))
            .text("Andreas Reuter")
            .end_element();
        b.start_element(q("publisher"))
            .text("Morgan Kaufmann")
            .end_element();
        b.start_element(q("price")).text("65.00").end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn builder_produces_preorder_ids() {
        let doc = book_doc();
        let root = doc.root();
        let ids: Vec<NodeId> = root.descendants().map(|n| n.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "descendants iterate in document order");
    }

    #[test]
    fn children_and_names() {
        let doc = book_doc();
        let book = doc.root().children().next().unwrap();
        assert_eq!(book.name().unwrap().local_part(), "book");
        let names: Vec<String> = book
            .children()
            .map(|c| c.name().unwrap().local_part().to_string())
            .collect();
        assert_eq!(names, ["title", "author", "author", "publisher", "price"]);
    }

    #[test]
    fn string_value_concatenates_text() {
        let doc = book_doc();
        let book = doc.root().children().next().unwrap();
        assert_eq!(
            book.string_value(),
            "Transaction ProcessingJim GrayAndreas ReuterMorgan Kaufmann65.00"
        );
        let title = book.children().next().unwrap();
        assert_eq!(title.string_value(), "Transaction Processing");
    }

    #[test]
    fn attributes_are_reachable_but_not_children() {
        let mut b = DocumentBuilder::new();
        b.start_element(q("report"));
        b.attribute(q("year"), "2004");
        b.attribute(q("month"), "10");
        b.start_element(q("rank")).text("1").end_element();
        b.end_element();
        let doc = b.finish();
        let report = doc.root().children().next().unwrap();
        assert_eq!(report.attributes().count(), 2);
        assert_eq!(report.children().count(), 1);
        let year = report.attribute(&q("year")).unwrap();
        assert_eq!(year.string_value(), "2004");
        assert_eq!(year.kind(), NodeKind::Attribute);
        assert!(year.parent().unwrap().is_same_node(&report));
        assert!(report.attribute(&q("absent")).is_none());
    }

    #[test]
    fn node_identity_distinguishes_equal_content() {
        let doc = book_doc();
        let book = doc.root().children().next().unwrap();
        let authors: Vec<NodeHandle> = book.child_elements_named(&q("author")).collect();
        assert_eq!(authors.len(), 2);
        assert!(!authors[0].is_same_node(&authors[1]));
        assert!(authors[0].is_same_node(&authors[0].clone()));
    }

    #[test]
    fn document_order_is_total_across_documents() {
        let d1 = book_doc();
        let d2 = book_doc();
        let a = d1.root();
        let b = d2.root();
        assert_ne!(a.document_order(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.document_order(&b), b.document_order(&a).reverse());
    }

    #[test]
    fn adjacent_text_merges_and_empty_text_dropped() {
        let mut b = DocumentBuilder::new();
        b.start_element(q("t"));
        b.text("foo").text("").text("bar");
        b.end_element();
        let doc = b.finish();
        let t = doc.root().children().next().unwrap();
        assert_eq!(t.children().count(), 1);
        assert_eq!(t.string_value(), "foobar");
    }

    #[test]
    fn copy_node_creates_fresh_identity() {
        let src = book_doc();
        let book = src.root().children().next().unwrap();
        let mut b = DocumentBuilder::new();
        b.start_element(q("wrapper"));
        b.copy_node(&book);
        b.end_element();
        let doc = b.finish();
        let copy = doc
            .root()
            .children()
            .next()
            .unwrap()
            .children()
            .next()
            .unwrap();
        assert_eq!(copy.name().unwrap().local_part(), "book");
        assert!(!copy.is_same_node(&book));
        assert_eq!(copy.string_value(), book.string_value());
    }

    #[test]
    fn ancestors_walk_to_document() {
        let doc = book_doc();
        let book = doc.root().children().next().unwrap();
        let title = book.children().next().unwrap();
        let kinds: Vec<NodeKind> = title.ancestors().map(|a| a.kind()).collect();
        assert_eq!(kinds, [NodeKind::Element, NodeKind::Document]);
    }

    #[test]
    #[should_panic(expected = "attributes must precede element content")]
    fn attribute_after_content_panics() {
        let mut b = DocumentBuilder::new();
        b.start_element(q("e"));
        b.text("x");
        b.attribute(q("a"), "v");
    }

    #[test]
    fn comments_and_pis_are_stored() {
        let mut b = DocumentBuilder::new();
        b.start_element(q("e"));
        b.comment("a comment");
        b.processing_instruction(q("target"), "data");
        b.end_element();
        let doc = b.finish();
        let e = doc.root().children().next().unwrap();
        let kinds: Vec<NodeKind> = e.children().map(|c| c.kind()).collect();
        assert_eq!(kinds, [NodeKind::Comment, NodeKind::ProcessingInstruction]);
        // Comments/PIs do not contribute to an element's string value.
        assert_eq!(e.string_value(), "");
    }
}
