//! # xqa-xdm — XQuery Data Model subset
//!
//! The value layer underneath the `xqa` XQuery engine, reproducing the
//! data model assumed by *"Extending XQuery for Analytics"* (SIGMOD
//! 2005): flat sequences of items, where an item is an atomic value or a
//! node in an immutable tree with node identity and document order.
//!
//! Modules:
//! - [`item`] — items, atomic values, atomization, EBV;
//! - [`sequence`] — the copy-on-write sequence representation and its
//!   builder;
//! - [`node`] — arena-backed documents, handles, builders;
//! - [`qname`] — qualified names;
//! - [`decimal`] — exact `xs:decimal` arithmetic;
//! - [`datetime`] — `xs:dateTime` / `xs:date`;
//! - [`compare`] — value/general comparison and `fn:deep-equal`;
//! - [`error`] — W3C-coded errors.

#![warn(missing_docs)]

pub mod compare;
pub mod datetime;
pub mod decimal;
pub mod error;
pub mod item;
pub mod node;
pub mod qname;
pub mod sequence;

pub use compare::{
    deep_equal, general_compare, node_deep_equal, sort_compare, value_compare, CompOp,
};
pub use datetime::{Date, DateTime};
pub use decimal::Decimal;
pub use error::{ErrorCode, XdmError, XdmResult};
pub use item::{
    atomize_sequence, effective_boolean_value, format_double, parse_boolean, parse_double,
    singleton, AtomicType, AtomicValue, Item,
};
pub use node::{Document, DocumentBuilder, NodeHandle, NodeId, NodeKind};
pub use qname::QName;
pub use sequence::{take_seq_counters, Sequence, SequenceBuilder};
