//! Items, atomic values and sequence-level predicates.
//!
//! An XDM value is a flat sequence of items; an item is a node or an
//! atomic value. Sequences live in [`crate::sequence`] as a
//! copy-on-write enum — flatness is an invariant maintained by
//! construction (there is no way to put a sequence inside an `Item`),
//! which is exactly the property the paper leans on when it notes that
//! nest expressions "are merged and lose their individual identity"
//! (§3.1).

use crate::datetime::{Date, DateTime};
use crate::decimal::Decimal;
use crate::error::{ErrorCode, XdmError, XdmResult};
use crate::node::NodeHandle;
use std::fmt;
use std::sync::Arc;

/// The atomic types the engine supports.
#[derive(Debug, Clone)]
pub enum AtomicValue {
    /// `xs:string`.
    String(Arc<str>),
    /// `xs:untypedAtomic` — the type of atomized node content.
    Untyped(Arc<str>),
    /// `xs:boolean`.
    Boolean(bool),
    /// `xs:integer`.
    Integer(i64),
    /// `xs:decimal`.
    Decimal(Decimal),
    /// `xs:double`.
    Double(f64),
    /// `xs:dateTime`.
    DateTime(DateTime),
    /// `xs:date`.
    Date(Date),
}

/// Names of the supported atomic types (for diagnostics and casts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    /// `xs:string`
    String,
    /// `xs:untypedAtomic`
    Untyped,
    /// `xs:boolean`
    Boolean,
    /// `xs:integer`
    Integer,
    /// `xs:decimal`
    Decimal,
    /// `xs:double`
    Double,
    /// `xs:dateTime`
    DateTime,
    /// `xs:date`
    Date,
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomicType::String => "xs:string",
            AtomicType::Untyped => "xs:untypedAtomic",
            AtomicType::Boolean => "xs:boolean",
            AtomicType::Integer => "xs:integer",
            AtomicType::Decimal => "xs:decimal",
            AtomicType::Double => "xs:double",
            AtomicType::DateTime => "xs:dateTime",
            AtomicType::Date => "xs:date",
        };
        f.write_str(s)
    }
}

impl AtomicValue {
    /// Convenience constructor for `xs:string` values.
    pub fn string(s: impl Into<Arc<str>>) -> AtomicValue {
        AtomicValue::String(s.into())
    }

    /// Convenience constructor for `xs:untypedAtomic` values.
    pub fn untyped(s: impl Into<Arc<str>>) -> AtomicValue {
        AtomicValue::Untyped(s.into())
    }

    /// The dynamic type of this value.
    pub fn atomic_type(&self) -> AtomicType {
        match self {
            AtomicValue::String(_) => AtomicType::String,
            AtomicValue::Untyped(_) => AtomicType::Untyped,
            AtomicValue::Boolean(_) => AtomicType::Boolean,
            AtomicValue::Integer(_) => AtomicType::Integer,
            AtomicValue::Decimal(_) => AtomicType::Decimal,
            AtomicValue::Double(_) => AtomicType::Double,
            AtomicValue::DateTime(_) => AtomicType::DateTime,
            AtomicValue::Date(_) => AtomicType::Date,
        }
    }

    /// True for the numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            AtomicValue::Integer(_) | AtomicValue::Decimal(_) | AtomicValue::Double(_)
        )
    }

    /// The string value (`fn:string` semantics).
    pub fn string_value(&self) -> String {
        match self {
            AtomicValue::String(s) | AtomicValue::Untyped(s) => s.to_string(),
            AtomicValue::Boolean(b) => b.to_string(),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Decimal(d) => d.to_string(),
            AtomicValue::Double(d) => format_double(*d),
            AtomicValue::DateTime(dt) => dt.to_string(),
            AtomicValue::Date(d) => d.to_string(),
        }
    }

    /// Cast to `xs:double` (used by arithmetic promotion and by general
    /// comparisons against untyped data).
    pub fn to_double(&self) -> XdmResult<f64> {
        match self {
            AtomicValue::Integer(i) => Ok(*i as f64),
            AtomicValue::Decimal(d) => Ok(d.to_f64()),
            AtomicValue::Double(d) => Ok(*d),
            AtomicValue::Boolean(b) => Ok(if *b { 1.0 } else { 0.0 }),
            AtomicValue::String(s) | AtomicValue::Untyped(s) => parse_double(s),
            other => Err(XdmError::type_error(format!(
                "cannot cast {} to xs:double",
                other.atomic_type()
            ))),
        }
    }

    /// Cast an untyped value to the target numeric/temporal type for
    /// comparison purposes; other values pass through unchanged.
    pub fn cast_untyped_as(&self, target: AtomicType) -> XdmResult<AtomicValue> {
        let s = match self {
            AtomicValue::Untyped(s) => s,
            _ => return Ok(self.clone()),
        };
        match target {
            AtomicType::Integer | AtomicType::Decimal | AtomicType::Double => {
                Ok(AtomicValue::Double(parse_double(s)?))
            }
            AtomicType::Boolean => Ok(AtomicValue::Boolean(parse_boolean(s)?)),
            AtomicType::DateTime => Ok(AtomicValue::DateTime(DateTime::parse(s)?)),
            AtomicType::Date => Ok(AtomicValue::Date(Date::parse(s)?)),
            AtomicType::String | AtomicType::Untyped => Ok(AtomicValue::string(&**s)),
        }
    }
}

/// Parse the `xs:double` lexical form (covers integers, decimals,
/// scientific notation, INF/-INF/NaN).
pub fn parse_double(s: &str) -> XdmResult<f64> {
    let t = s.trim();
    match t {
        "INF" | "+INF" => return Ok(f64::INFINITY),
        "-INF" => return Ok(f64::NEG_INFINITY),
        "NaN" => return Ok(f64::NAN),
        _ => {}
    }
    // Rust's f64 parser accepts "inf"/"nan" spellings XQuery does not;
    // reject anything containing alphabetic chars other than e/E.
    if t.is_empty() || t.chars().any(|c| c.is_alphabetic() && c != 'e' && c != 'E') {
        return Err(XdmError::value_error(format!(
            "cannot cast {t:?} to xs:double"
        )));
    }
    t.parse::<f64>()
        .map_err(|_| XdmError::value_error(format!("cannot cast {t:?} to xs:double")))
}

/// Parse the `xs:boolean` lexical form.
pub fn parse_boolean(s: &str) -> XdmResult<bool> {
    match s.trim() {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        other => Err(XdmError::value_error(format!(
            "cannot cast {other:?} to xs:boolean"
        ))),
    }
}

/// Format an `xs:double` per the F&O `fn:string` rules (approximated):
/// plain decimal notation for magnitudes in `[1e-6, 1e6)`, otherwise
/// scientific notation with an explicit exponent.
pub fn format_double(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "INF" } else { "-INF" }.to_string();
    }
    if v == 0.0 {
        return if v.is_sign_negative() {
            "-0".to_string()
        } else {
            "0".to_string()
        };
    }
    let abs = v.abs();
    if (1e-6..1e6).contains(&abs) {
        if v == v.trunc() && abs < 1e15 {
            format!("{}", v as i64)
        } else {
            let s = format!("{v}");
            // Rust may still emit exponents for values like 1e-5 -> "0.00001".
            if s.contains('e') || s.contains('E') {
                format!("{v:.10}")
                    .trim_end_matches('0')
                    .trim_end_matches('.')
                    .to_string()
            } else {
                s
            }
        }
    } else {
        let formatted = format!("{v:E}");
        // Rust gives "1.25E7"; XQuery wants "1.25E7" as well. Keep it.
        formatted
    }
}

/// One item: a node or an atomic value. Two machine words plus the
/// enum tag; cheap to clone.
#[derive(Debug, Clone)]
pub enum Item {
    /// A node reference.
    Node(NodeHandle),
    /// An atomic value.
    Atomic(AtomicValue),
}

impl Item {
    /// The string value of the item (`fn:string`).
    pub fn string_value(&self) -> String {
        match self {
            Item::Node(n) => n.string_value(),
            Item::Atomic(a) => a.string_value(),
        }
    }

    /// Atomize this item: nodes become `xs:untypedAtomic` of their string
    /// value (schema-less data model), atomics pass through.
    pub fn atomize(&self) -> AtomicValue {
        match self {
            Item::Node(n) => AtomicValue::untyped(n.string_value()),
            Item::Atomic(a) => a.clone(),
        }
    }

    /// The node inside, or a type error.
    pub fn as_node(&self) -> XdmResult<&NodeHandle> {
        match self {
            Item::Node(n) => Ok(n),
            Item::Atomic(a) => Err(XdmError::type_error(format!(
                "expected a node, got {}",
                a.atomic_type()
            ))),
        }
    }

    /// True when the item is a node.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }
}

impl From<AtomicValue> for Item {
    fn from(v: AtomicValue) -> Item {
        Item::Atomic(v)
    }
}

impl From<NodeHandle> for Item {
    fn from(n: NodeHandle) -> Item {
        Item::Node(n)
    }
}

impl From<bool> for Item {
    fn from(v: bool) -> Item {
        Item::Atomic(AtomicValue::Boolean(v))
    }
}

impl From<i64> for Item {
    fn from(v: i64) -> Item {
        Item::Atomic(AtomicValue::Integer(v))
    }
}

impl From<f64> for Item {
    fn from(v: f64) -> Item {
        Item::Atomic(AtomicValue::Double(v))
    }
}

impl From<&str> for Item {
    fn from(v: &str) -> Item {
        Item::Atomic(AtomicValue::string(v))
    }
}

/// Atomize a whole sequence (`fn:data`).
pub fn atomize_sequence(seq: &[Item]) -> crate::sequence::Sequence {
    seq.iter().map(|i| Item::Atomic(i.atomize())).collect()
}

/// The effective boolean value of a sequence (`fn:boolean`):
/// - empty → false
/// - first item a node → true
/// - singleton boolean/string/untyped/numeric → the usual rules
/// - anything else → `FORG0006`.
pub fn effective_boolean_value(seq: &[Item]) -> XdmResult<bool> {
    match seq {
        [] => Ok(false),
        [Item::Node(_), ..] => Ok(true),
        [Item::Atomic(a)] => match a {
            AtomicValue::Boolean(b) => Ok(*b),
            AtomicValue::String(s) | AtomicValue::Untyped(s) => Ok(!s.is_empty()),
            AtomicValue::Integer(i) => Ok(*i != 0),
            AtomicValue::Decimal(d) => Ok(!d.is_zero()),
            AtomicValue::Double(d) => Ok(*d != 0.0 && !d.is_nan()),
            other => Err(XdmError::new(
                ErrorCode::FORG0006,
                format!("no effective boolean value for {}", other.atomic_type()),
            )),
        },
        _ => Err(XdmError::new(
            ErrorCode::FORG0006,
            "effective boolean value of a multi-item atomic sequence",
        )),
    }
}

/// Extract the single item of a singleton sequence, or report a type
/// error mentioning `what`.
pub fn singleton<'a>(seq: &'a [Item], what: &str) -> XdmResult<&'a Item> {
    match seq {
        [item] => Ok(item),
        [] => Err(XdmError::type_error(format!(
            "{what}: empty sequence where one item required"
        ))),
        _ => Err(XdmError::type_error(format!(
            "{what}: sequence of {} items where one required",
            seq.len()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DocumentBuilder;
    use crate::qname::QName;

    fn text_element(name: &str, text: &str) -> NodeHandle {
        let mut b = DocumentBuilder::new();
        b.start_element(QName::local(name)).text(text).end_element();
        b.finish().root().children().next().unwrap()
    }

    #[test]
    fn atomize_node_yields_untyped() {
        let n = text_element("price", "65.00");
        let v = Item::Node(n).atomize();
        assert_eq!(v.atomic_type(), AtomicType::Untyped);
        assert_eq!(v.string_value(), "65.00");
    }

    #[test]
    fn ebv_rules() {
        assert!(!effective_boolean_value(&[]).unwrap());
        assert!(effective_boolean_value(&[Item::Node(text_element("a", ""))]).unwrap());
        assert!(effective_boolean_value(&[Item::from(true)]).unwrap());
        assert!(!effective_boolean_value(&[Item::from(false)]).unwrap());
        assert!(effective_boolean_value(&[Item::from("x")]).unwrap());
        assert!(!effective_boolean_value(&[Item::from("")]).unwrap());
        assert!(effective_boolean_value(&[Item::from(5i64)]).unwrap());
        assert!(!effective_boolean_value(&[Item::from(0i64)]).unwrap());
        assert!(!effective_boolean_value(&[Item::from(f64::NAN)]).unwrap());
        // Two atomic items: error.
        let err = effective_boolean_value(&[Item::from(1i64), Item::from(2i64)]).unwrap_err();
        assert_eq!(err.code, ErrorCode::FORG0006);
        // dateTime singleton: error.
        let dt =
            AtomicValue::DateTime(crate::datetime::DateTime::parse("2004-01-01T00:00:00").unwrap());
        assert!(effective_boolean_value(&[Item::Atomic(dt)]).is_err());
    }

    #[test]
    fn double_formatting_follows_fo_rules() {
        assert_eq!(format_double(42.0), "42");
        assert_eq!(format_double(-3.5), "-3.5");
        assert_eq!(format_double(0.0), "0");
        assert_eq!(format_double(1.0e7), "1E7");
        assert_eq!(format_double(f64::NAN), "NaN");
        assert_eq!(format_double(f64::INFINITY), "INF");
        assert_eq!(format_double(f64::NEG_INFINITY), "-INF");
        assert_eq!(format_double(0.5), "0.5");
    }

    #[test]
    fn parse_double_lexical_space() {
        assert_eq!(parse_double("1.5e2").unwrap(), 150.0);
        assert_eq!(parse_double(" 42 ").unwrap(), 42.0);
        assert!(parse_double("INF").unwrap().is_infinite());
        assert!(parse_double("NaN").unwrap().is_nan());
        assert!(parse_double("inf").is_err());
        assert!(parse_double("0x10").is_err());
        assert!(parse_double("").is_err());
    }

    #[test]
    fn untyped_casts_for_comparison() {
        let u = AtomicValue::untyped("42");
        match u.cast_untyped_as(AtomicType::Integer).unwrap() {
            AtomicValue::Double(d) => assert_eq!(d, 42.0),
            other => panic!("expected double, got {other:?}"),
        }
        let u = AtomicValue::untyped("2004-05-06");
        assert!(matches!(
            u.cast_untyped_as(AtomicType::Date).unwrap(),
            AtomicValue::Date(_)
        ));
        assert!(AtomicValue::untyped("abc")
            .cast_untyped_as(AtomicType::Double)
            .is_err());
    }

    #[test]
    fn singleton_helper_errors() {
        assert!(singleton(&[], "test").is_err());
        assert!(singleton(&[Item::from(1i64), Item::from(2i64)], "test").is_err());
        assert!(singleton(&[Item::from(1i64)], "test").is_ok());
    }

    #[test]
    fn item_string_values() {
        assert_eq!(Item::from(3i64).string_value(), "3");
        assert_eq!(Item::from(true).string_value(), "true");
        assert_eq!(Item::from("hi").string_value(), "hi");
        let d = AtomicValue::Decimal(crate::decimal::Decimal::parse("59.00").unwrap());
        assert_eq!(Item::Atomic(d).string_value(), "59");
    }
}
