//! The copy-on-write sequence representation.
//!
//! An XDM value is a flat, ordered sequence of items. Empty and
//! singleton sequences dominate XPath step results, and the paper's
//! grouping/nesting semantics make per-group sequences the engine's
//! central value — so the representation is tuned for exactly those
//! shapes:
//!
//! - [`Sequence::Empty`] and [`Sequence::One`] carry no heap backing at
//!   all (beyond what the item itself owns);
//! - [`Sequence::Many`] is an `Arc<[Item]>`: `clone()` is one atomic
//!   increment, and the items are structurally shared between every
//!   clone (a `let` binding, a tuple snapshot, a nest append all reuse
//!   the same backing allocation).
//!
//! `Deref<Target = [Item]>` keeps every read-only consumer (length,
//! iteration, indexing, `&[Item]` arguments) oblivious to the variants.
//! Construction goes through [`SequenceBuilder`] on hot paths or
//! `From<Vec<Item>>` elsewhere; both normalize 0/1-item results to the
//! unboxed variants.
//!
//! Two thread-local counters make the copy behaviour observable (they
//! feed `EvalStats`, `explain analyze` and the service's `/metrics`):
//!
//! - *items copied* — items cloned into newly allocated backing storage
//!   (building a `Many` from a slice, spilling a shared builder, taking
//!   an owned `Vec` out of a shared `Many`);
//! - *clone-shared items* — items whose copy was *avoided* because a
//!   `Many` clone shared its backing allocation instead (counted as the
//!   length of the shared sequence: under the old `Vec<Item>`
//!   representation each of those clones would have copied that many
//!   items).

use crate::item::Item;
use std::cell::Cell;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

thread_local! {
    static SEQ_ITEMS_COPIED: Cell<u64> = const { Cell::new(0) };
    static SEQ_CLONES_SHARED: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_copied(n: usize) {
    SEQ_ITEMS_COPIED.with(|c| c.set(c.get() + n as u64));
}

#[inline]
fn count_shared(n: usize) {
    SEQ_CLONES_SHARED.with(|c| c.set(c.get() + n as u64));
}

/// Drain this thread's sequence-copy counters, returning
/// `(items_copied, clones_shared)` accumulated since the last call.
///
/// The engine resets the counters at the start of every evaluation (by
/// draining and discarding) and folds the totals into its `EvalStats`
/// at the end; parallel workers drain into their private sinks before
/// the cross-worker merge, so concurrent queries never interleave.
pub fn take_seq_counters() -> (u64, u64) {
    let copied = SEQ_ITEMS_COPIED.with(|c| c.replace(0));
    let shared = SEQ_CLONES_SHARED.with(|c| c.replace(0));
    (copied, shared)
}

/// An XDM value: a flat, ordered sequence of items, with O(1) clone.
#[derive(Default)]
pub enum Sequence {
    /// The empty sequence `()`.
    #[default]
    Empty,
    /// A singleton — the overwhelmingly common XPath result shape.
    One(Item),
    /// Two or more items behind a shared, immutable allocation.
    Many(Arc<[Item]>),
}

impl Sequence {
    /// The empty sequence.
    #[inline]
    pub const fn empty() -> Sequence {
        Sequence::Empty
    }

    /// A singleton sequence.
    #[inline]
    pub fn one(item: impl Into<Item>) -> Sequence {
        Sequence::One(item.into())
    }

    /// Build from a borrowed slice, copying the items (counted).
    pub fn from_slice(items: &[Item]) -> Sequence {
        match items {
            [] => Sequence::Empty,
            [item] => Sequence::One(item.clone()),
            _ => {
                count_copied(items.len());
                Sequence::Many(items.into())
            }
        }
    }

    /// The items as a slice (what `Deref` also provides).
    #[inline]
    pub fn as_slice(&self) -> &[Item] {
        match self {
            Sequence::Empty => &[],
            Sequence::One(item) => std::slice::from_ref(item),
            Sequence::Many(items) => items,
        }
    }

    /// Take the items as an owned `Vec`. `Many` always copies (the
    /// backing allocation may be shared; counted), so reserve this for
    /// genuinely mutating consumers — sorting, deduplication, splicing.
    pub fn into_vec(self) -> Vec<Item> {
        match self {
            Sequence::Empty => Vec::new(),
            Sequence::One(item) => vec![item],
            Sequence::Many(items) => {
                count_copied(items.len());
                items.to_vec()
            }
        }
    }
}

impl Clone for Sequence {
    #[inline]
    fn clone(&self) -> Sequence {
        match self {
            Sequence::Empty => Sequence::Empty,
            Sequence::One(item) => Sequence::One(item.clone()),
            Sequence::Many(items) => {
                // The whole point: one refcount bump instead of
                // `items.len()` item copies under the old Vec layout.
                count_shared(items.len());
                Sequence::Many(Arc::clone(items))
            }
        }
    }
}

impl Deref for Sequence {
    type Target = [Item];

    #[inline]
    fn deref(&self) -> &[Item] {
        self.as_slice()
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Item> for Sequence {
    #[inline]
    fn from(item: Item) -> Sequence {
        Sequence::One(item)
    }
}

impl From<Vec<Item>> for Sequence {
    /// Moves the items (nothing is copied): length 0 and 1 normalize to
    /// the unboxed variants, anything longer becomes a `Many`.
    fn from(mut items: Vec<Item>) -> Sequence {
        match items.len() {
            0 => Sequence::Empty,
            1 => Sequence::One(items.pop().expect("len checked")),
            _ => Sequence::Many(items.into()),
        }
    }
}

impl From<&[Item]> for Sequence {
    fn from(items: &[Item]) -> Sequence {
        Sequence::from_slice(items)
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Sequence {
        let mut b = SequenceBuilder::new();
        for item in iter {
            b.push(item);
        }
        b.build()
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owning iterator. `Many` yields clones of the shared items (cheap —
/// an `Item` is two machine words; its heavy payloads are themselves
/// behind `Arc`s), because items cannot be moved out of a shared
/// `Arc<[Item]>`.
pub enum SequenceIntoIter {
    /// Exhausted / empty.
    Empty,
    /// One item left.
    One(Item),
    /// Walking a shared allocation.
    Many(Arc<[Item]>, usize),
}

impl Iterator for SequenceIntoIter {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        match std::mem::replace(self, SequenceIntoIter::Empty) {
            SequenceIntoIter::Empty => None,
            SequenceIntoIter::One(item) => Some(item),
            SequenceIntoIter::Many(items, i) => {
                let out = items.get(i).cloned();
                if i + 1 < items.len() {
                    *self = SequenceIntoIter::Many(items, i + 1);
                }
                out
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            SequenceIntoIter::Empty => 0,
            SequenceIntoIter::One(_) => 1,
            SequenceIntoIter::Many(items, i) => items.len() - i,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for SequenceIntoIter {}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = SequenceIntoIter;

    fn into_iter(self) -> SequenceIntoIter {
        match self {
            Sequence::Empty => SequenceIntoIter::Empty,
            Sequence::One(item) => SequenceIntoIter::One(item),
            Sequence::Many(items) => SequenceIntoIter::Many(items, 0),
        }
    }
}

/// Incremental sequence construction with sharing-aware appends.
///
/// The builder mirrors the sequence variants: it stays unboxed through
/// the empty/singleton cases, *adopts* a whole `Many` appended into an
/// empty builder without touching its items (the group-nest and
/// morsel-merge fast path), and only spills to an owned `Vec` — copying
/// the adopted items, counted — when construction keeps going past a
/// shared state.
#[derive(Debug, Default)]
pub struct SequenceBuilder {
    state: BuilderState,
}

#[derive(Debug, Default)]
enum BuilderState {
    #[default]
    Empty,
    One(Item),
    /// An adopted shared allocation, not yet copied.
    Shared(Arc<[Item]>),
    /// Owned storage being extended.
    Vec(Vec<Item>),
}

impl SequenceBuilder {
    /// An empty builder.
    pub fn new() -> SequenceBuilder {
        SequenceBuilder::default()
    }

    /// An empty builder with owned storage pre-sized for `n` items.
    /// (Appending a lone `Many` into it still shares; the capacity is
    /// only claimed once owned storage is actually needed.)
    pub fn with_capacity(n: usize) -> SequenceBuilder {
        if n <= 1 {
            return SequenceBuilder::new();
        }
        SequenceBuilder {
            state: BuilderState::Vec(Vec::with_capacity(n)),
        }
    }

    /// Number of items appended so far.
    pub fn len(&self) -> usize {
        match &self.state {
            BuilderState::Empty => 0,
            BuilderState::One(_) => 1,
            BuilderState::Shared(items) => items.len(),
            BuilderState::Vec(items) => items.len(),
        }
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spill to owned storage (copying any adopted shared items).
    fn spill(&mut self, extra: usize) -> &mut Vec<Item> {
        let state = std::mem::take(&mut self.state);
        let vec = match state {
            BuilderState::Vec(v) => v,
            BuilderState::Empty => Vec::with_capacity(extra),
            BuilderState::One(item) => {
                let mut v = Vec::with_capacity(1 + extra);
                v.push(item);
                v
            }
            BuilderState::Shared(items) => {
                count_copied(items.len());
                let mut v = Vec::with_capacity(items.len() + extra);
                v.extend_from_slice(&items);
                v
            }
        };
        self.state = BuilderState::Vec(vec);
        match &mut self.state {
            BuilderState::Vec(v) => v,
            _ => unreachable!("just set"),
        }
    }

    /// Append one item.
    pub fn push(&mut self, item: Item) {
        match &mut self.state {
            BuilderState::Empty => self.state = BuilderState::One(item),
            BuilderState::Vec(v) => v.push(item),
            _ => self.spill(1).push(item),
        }
    }

    /// Append a whole sequence. A `Many` appended into an *empty*
    /// builder is adopted — zero items touched; if nothing further is
    /// appended, [`SequenceBuilder::build`] hands the same allocation
    /// back out.
    pub fn append(&mut self, seq: Sequence) {
        match seq {
            Sequence::Empty => {}
            Sequence::One(item) => self.push(item),
            Sequence::Many(items) => match &mut self.state {
                BuilderState::Empty => self.state = BuilderState::Shared(items),
                BuilderState::Vec(v) => v.extend_from_slice(&items),
                _ => self.spill(items.len()).extend_from_slice(&items),
            },
        }
    }

    /// Append items from a borrowed slice (copied, counted).
    pub fn extend_from_slice(&mut self, items: &[Item]) {
        match items {
            [] => {}
            [item] => self.push(item.clone()),
            _ => {
                count_copied(items.len());
                match &mut self.state {
                    BuilderState::Empty => {
                        self.state = BuilderState::Vec(items.to_vec());
                    }
                    BuilderState::Vec(v) => v.extend_from_slice(items),
                    _ => self.spill(items.len()).extend_from_slice(items),
                }
            }
        }
    }

    /// Finish, normalizing to the smallest variant.
    pub fn build(self) -> Sequence {
        match self.state {
            BuilderState::Empty => Sequence::Empty,
            BuilderState::One(item) => Sequence::One(item),
            BuilderState::Shared(items) => Sequence::Many(items),
            BuilderState::Vec(items) => Sequence::from(items),
        }
    }
}

/// Construct a [`Sequence`] from item-convertible expressions, the way
/// `vec![...]` built the old representation:
/// `seq![]`, `seq![Item::from(1i64)]`, `seq![a, b, c]`.
#[macro_export]
macro_rules! seq {
    () => {
        $crate::Sequence::Empty
    };
    ($item:expr $(,)?) => {
        $crate::Sequence::One($crate::Item::from($item))
    };
    ($($item:expr),+ $(,)?) => {
        $crate::Sequence::from(vec![$($crate::Item::from($item)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(range: std::ops::Range<i64>) -> Sequence {
        range.map(Item::from).collect()
    }

    #[test]
    fn from_vec_normalizes_small_lengths() {
        assert!(matches!(Sequence::from(Vec::new()), Sequence::Empty));
        assert!(matches!(
            Sequence::from(vec![Item::from(1i64)]),
            Sequence::One(_)
        ));
        assert!(matches!(
            Sequence::from(vec![Item::from(1i64), Item::from(2i64)]),
            Sequence::Many(_)
        ));
    }

    #[test]
    fn deref_exposes_slice_api() {
        let s = ints(0..3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].string_value(), "1");
        assert_eq!(s.first().unwrap().string_value(), "0");
        let empty = Sequence::Empty;
        assert!(empty.is_empty());
        let one = Sequence::one(Item::from("x"));
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn clone_of_many_shares_the_allocation() {
        let s = ints(0..4);
        take_seq_counters();
        let t = s.clone();
        let (copied, shared) = take_seq_counters();
        assert_eq!(copied, 0);
        assert_eq!(shared, 4);
        match (&s, &t) {
            (Sequence::Many(a), Sequence::Many(b)) => assert!(Arc::ptr_eq(a, b)),
            other => panic!("expected Many/Many, got {other:?}"),
        }
    }

    #[test]
    fn clone_of_small_variants_counts_nothing() {
        take_seq_counters();
        let _ = Sequence::Empty.clone();
        let _ = Sequence::one(Item::from(1i64)).clone();
        assert_eq!(take_seq_counters(), (0, 0));
    }

    #[test]
    fn builder_adopts_a_lone_many_without_copying() {
        let s = ints(0..5);
        let arc = match &s {
            Sequence::Many(a) => Arc::clone(a),
            other => panic!("expected Many, got {other:?}"),
        };
        take_seq_counters();
        let mut b = SequenceBuilder::new();
        b.append(s);
        let rebuilt = b.build();
        let (copied, _) = take_seq_counters();
        assert_eq!(copied, 0, "adoption must not copy");
        match rebuilt {
            Sequence::Many(a) => assert!(Arc::ptr_eq(&a, &arc)),
            other => panic!("expected Many back, got {other:?}"),
        }
    }

    #[test]
    fn builder_spill_copies_and_counts() {
        let s = ints(0..5);
        take_seq_counters();
        let mut b = SequenceBuilder::new();
        b.append(s);
        b.push(Item::from(99i64));
        let out = b.build();
        let (copied, _) = take_seq_counters();
        assert_eq!(copied, 5, "spilling the adopted Many copies its items");
        assert_eq!(out.len(), 6);
        assert_eq!(out[5].string_value(), "99");
    }

    #[test]
    fn builder_concats_in_order() {
        let mut b = SequenceBuilder::new();
        b.append(ints(0..2));
        b.append(Sequence::Empty);
        b.append(Sequence::one(Item::from(9i64)));
        b.append(ints(0..2));
        let out = b.build();
        let values: Vec<String> = out.iter().map(|i| i.string_value()).collect();
        assert_eq!(values, ["0", "1", "9", "0", "1"]);
    }

    #[test]
    fn owning_iterator_yields_all_variants() {
        assert_eq!(Sequence::Empty.into_iter().count(), 0);
        let one: Vec<String> = Sequence::one(Item::from("a"))
            .into_iter()
            .map(|i| i.string_value())
            .collect();
        assert_eq!(one, ["a"]);
        let many = ints(0..3);
        assert_eq!(many.clone().into_iter().len(), 3);
        let values: Vec<String> = many.into_iter().map(|i| i.string_value()).collect();
        assert_eq!(values, ["0", "1", "2"]);
    }

    #[test]
    fn into_vec_counts_the_forced_copy() {
        take_seq_counters();
        let v = ints(0..3).into_vec();
        let (copied, _) = take_seq_counters();
        assert_eq!(v.len(), 3);
        assert_eq!(copied, 3);
        take_seq_counters();
        assert_eq!(Sequence::one(Item::from(1i64)).into_vec().len(), 1);
        assert_eq!(take_seq_counters().0, 0, "One moves, no copy");
    }

    #[test]
    fn seq_macro_builds_each_variant() {
        assert!(matches!(seq![], Sequence::Empty));
        assert!(matches!(seq![1i64], Sequence::One(_)));
        let s = seq!["a", "b", "c"];
        assert_eq!(s.len(), 3);
        assert_eq!(s[2].string_value(), "c");
    }
}
