//! `xs:dateTime` and `xs:date` values.
//!
//! The paper's sales queries extract year/month components from
//! timestamps (`year-from-dateTime`, `month-from-dateTime`) and order
//! sales by timestamp for moving-window aggregation, so we need parsing,
//! total ordering, and component accessors. Timezone offsets are parsed
//! and honoured in comparisons (values are compared on the UTC timeline;
//! values without a timezone are treated as UTC, a simplification of the
//! W3C ±14h indeterminacy rule).

use crate::error::{ErrorCode, XdmError, XdmResult};
use std::cmp::Ordering;
use std::fmt;

/// A parsed `xs:dateTime`: proleptic Gregorian calendar, nanosecond
/// fraction, optional timezone offset in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DateTime {
    /// Astronomical year (year 0 allowed, negative years BCE).
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day 1..=31 (validated against the month).
    pub day: u8,
    /// Hour 0..=23.
    pub hour: u8,
    /// Minute 0..=59.
    pub minute: u8,
    /// Second 0..=59 (leap seconds are not modelled).
    pub second: u8,
    /// Nanoseconds 0..=999_999_999.
    pub nanos: u32,
    /// Timezone offset in minutes east of UTC, if stated.
    pub tz_offset_min: Option<i16>,
}

/// A parsed `xs:date` (a dateTime with no time-of-day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Date {
    /// Astronomical year.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day 1..=31.
    pub day: u8,
    /// Timezone offset in minutes east of UTC, if stated.
    pub tz_offset_min: Option<i16>,
}

/// Days from civil date to days-since-epoch (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = m as i64;
    let d = d as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// True if `y` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in the given month.
pub fn days_in_month(y: i32, m: u8) -> u8 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn validate_date(year: i32, month: u8, day: u8) -> XdmResult<()> {
    if !(1..=12).contains(&month) {
        return Err(XdmError::new(
            ErrorCode::FODT0001,
            format!("month {month} out of range"),
        ));
    }
    if day < 1 || day > days_in_month(year, month) {
        return Err(XdmError::new(
            ErrorCode::FODT0001,
            format!("day {day} out of range for {year:04}-{month:02}"),
        ));
    }
    Ok(())
}

/// Parse a fixed-width unsigned integer field from ASCII digits.
fn parse_digits(s: &str, what: &str) -> XdmResult<u32> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(XdmError::value_error(format!("invalid {what} field {s:?}")));
    }
    s.parse::<u32>()
        .map_err(|_| XdmError::value_error(format!("invalid {what} field {s:?}")))
}

/// Split off a timezone suffix (`Z` or `±hh:mm`) from a lexical form.
/// Returns the remaining prefix and the offset.
fn split_timezone(s: &str) -> XdmResult<(&str, Option<i16>)> {
    if let Some(stripped) = s.strip_suffix('Z') {
        return Ok((stripped, Some(0)));
    }
    // ±hh:mm — but beware: the date part itself may start with '-', so we
    // only look at the last 6 chars and require the ':' in the middle.
    if s.len() >= 6 {
        let tail = &s[s.len() - 6..];
        let bytes = tail.as_bytes();
        if (bytes[0] == b'+' || bytes[0] == b'-') && bytes[3] == b':' {
            let hh = parse_digits(&tail[1..3], "timezone hour")?;
            let mm = parse_digits(&tail[4..6], "timezone minute")?;
            if hh > 14 || mm > 59 || (hh == 14 && mm != 0) {
                return Err(XdmError::new(
                    ErrorCode::FODT0001,
                    format!("timezone {tail:?} out of range"),
                ));
            }
            let sign = if bytes[0] == b'-' { -1 } else { 1 };
            return Ok((&s[..s.len() - 6], Some(sign * (hh * 60 + mm) as i16)));
        }
    }
    Ok((s, None))
}

/// Parse `(-)YYYY-MM-DD`, returning (year, month, day).
fn parse_date_part(s: &str) -> XdmResult<(i32, u8, u8)> {
    let (negative, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let parts: Vec<&str> = body.split('-').collect();
    if parts.len() != 3 || parts[0].len() < 4 {
        return Err(XdmError::value_error(format!("invalid date {s:?}")));
    }
    let year = parse_digits(parts[0], "year")? as i32;
    let year = if negative { -year } else { year };
    let month = parse_digits(parts[1], "month")? as u8;
    let day = parse_digits(parts[2], "day")? as u8;
    if parts[1].len() != 2 || parts[2].len() != 2 {
        return Err(XdmError::value_error(format!("invalid date {s:?}")));
    }
    validate_date(year, month, day)?;
    Ok((year, month, day))
}

impl DateTime {
    /// Parse the `xs:dateTime` lexical form
    /// `YYYY-MM-DDThh:mm:ss(.fff...)?(Z|±hh:mm)?`.
    pub fn parse(s: &str) -> XdmResult<DateTime> {
        let t = s.trim();
        let (body, tz) = split_timezone(t)?;
        let tpos = body.find('T').ok_or_else(|| {
            XdmError::value_error(format!("invalid xs:dateTime {t:?} (missing 'T')"))
        })?;
        let (date_s, time_s) = body.split_at(tpos);
        let time_s = &time_s[1..];
        let (year, month, day) = parse_date_part(date_s)?;
        let tparts: Vec<&str> = time_s.split(':').collect();
        if tparts.len() != 3 || tparts[0].len() != 2 || tparts[1].len() != 2 {
            return Err(XdmError::value_error(format!("invalid time in {t:?}")));
        }
        let hour = parse_digits(tparts[0], "hour")? as u8;
        let minute = parse_digits(tparts[1], "minute")? as u8;
        let (sec_s, nanos) = match tparts[2].find('.') {
            Some(dot) => {
                let (sec, frac) = tparts[2].split_at(dot);
                let frac = &frac[1..];
                if frac.is_empty() || frac.len() > 9 {
                    return Err(XdmError::value_error(format!(
                        "invalid fractional seconds in {t:?}"
                    )));
                }
                let base = parse_digits(frac, "fractional seconds")?;
                (sec, base * 10u32.pow(9 - frac.len() as u32))
            }
            None => (tparts[2], 0),
        };
        if sec_s.len() != 2 {
            return Err(XdmError::value_error(format!("invalid seconds in {t:?}")));
        }
        let second = parse_digits(sec_s, "second")? as u8;
        if hour > 24
            || minute > 59
            || second > 59
            || (hour == 24 && (minute != 0 || second != 0 || nanos != 0))
        {
            return Err(XdmError::new(
                ErrorCode::FODT0001,
                format!("time out of range in {t:?}"),
            ));
        }
        // 24:00:00 normalizes to 00:00:00 of the next day; we keep it
        // simple and reject it instead (not used by the paper workloads).
        if hour == 24 {
            return Err(XdmError::new(
                ErrorCode::FODT0001,
                "24:00:00 is not supported",
            ));
        }
        Ok(DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            nanos,
            tz_offset_min: tz,
        })
    }

    /// Seconds on the UTC timeline (absent timezone treated as UTC).
    pub fn epoch_seconds(&self) -> i64 {
        let days = days_from_civil(self.year, self.month, self.day);
        let tz = self.tz_offset_min.unwrap_or(0) as i64;
        days * 86_400 + self.hour as i64 * 3_600 + self.minute as i64 * 60 + self.second as i64
            - tz * 60
    }

    /// Build from components, validating ranges.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
        nanos: u32,
        tz_offset_min: Option<i16>,
    ) -> XdmResult<DateTime> {
        validate_date(year, month, day)?;
        if hour > 23 || minute > 59 || second > 59 || nanos > 999_999_999 {
            return Err(XdmError::new(
                ErrorCode::FODT0001,
                "time component out of range",
            ));
        }
        Ok(DateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            nanos,
            tz_offset_min,
        })
    }

    /// The date part of this dateTime.
    pub fn date(&self) -> Date {
        Date {
            year: self.year,
            month: self.month,
            day: self.day,
            tz_offset_min: self.tz_offset_min,
        }
    }
}

impl PartialOrd for DateTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DateTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.epoch_seconds()
            .cmp(&other.epoch_seconds())
            .then_with(|| self.nanos.cmp(&other.nanos))
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )?;
        if self.nanos != 0 {
            let frac = format!("{:09}", self.nanos);
            write!(f, ".{}", frac.trim_end_matches('0'))?;
        }
        fmt_tz(f, self.tz_offset_min)
    }
}

fn fmt_tz(f: &mut fmt::Formatter<'_>, tz: Option<i16>) -> fmt::Result {
    match tz {
        None => Ok(()),
        Some(0) => f.write_str("Z"),
        Some(m) => {
            let sign = if m < 0 { '-' } else { '+' };
            let m = m.abs();
            write!(f, "{sign}{:02}:{:02}", m / 60, m % 60)
        }
    }
}

impl Date {
    /// Parse the `xs:date` lexical form `YYYY-MM-DD(Z|±hh:mm)?`.
    pub fn parse(s: &str) -> XdmResult<Date> {
        let t = s.trim();
        let (body, tz) = split_timezone(t)?;
        let (year, month, day) = parse_date_part(body)?;
        Ok(Date {
            year,
            month,
            day,
            tz_offset_min: tz,
        })
    }

    /// Build from components, validating ranges.
    pub fn new(year: i32, month: u8, day: u8, tz_offset_min: Option<i16>) -> XdmResult<Date> {
        validate_date(year, month, day)?;
        Ok(Date {
            year,
            month,
            day,
            tz_offset_min,
        })
    }

    /// Midnight at the start of this date, on the UTC timeline.
    pub fn epoch_seconds(&self) -> i64 {
        let days = days_from_civil(self.year, self.month, self.day);
        days * 86_400 - self.tz_offset_min.unwrap_or(0) as i64 * 60
    }
}

impl PartialOrd for Date {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Date {
    fn cmp(&self, other: &Self) -> Ordering {
        self.epoch_seconds().cmp(&other.epoch_seconds())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)?;
        fmt_tz(f, self.tz_offset_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_timestamp() {
        let dt = DateTime::parse("2004-01-31T11:32:07").unwrap();
        assert_eq!((dt.year, dt.month, dt.day), (2004, 1, 31));
        assert_eq!((dt.hour, dt.minute, dt.second), (11, 32, 7));
        assert_eq!(dt.tz_offset_min, None);
        assert_eq!(dt.to_string(), "2004-01-31T11:32:07");
    }

    #[test]
    fn parse_with_timezone_and_fraction() {
        let dt = DateTime::parse("2004-04-01T11:32:07.5-08:00").unwrap();
        assert_eq!(dt.nanos, 500_000_000);
        assert_eq!(dt.tz_offset_min, Some(-480));
        assert_eq!(dt.to_string(), "2004-04-01T11:32:07.5-08:00");
        let z = DateTime::parse("2004-04-01T00:00:00Z").unwrap();
        assert_eq!(z.tz_offset_min, Some(0));
    }

    #[test]
    fn timezone_affects_timeline_order() {
        let a = DateTime::parse("2004-01-01T12:00:00+02:00").unwrap();
        let b = DateTime::parse("2004-01-01T11:00:00Z").unwrap();
        // 12:00+02:00 is 10:00Z, so a < b.
        assert!(a < b);
    }

    #[test]
    fn ordering_follows_timeline() {
        let a = DateTime::parse("2003-12-31T23:59:59").unwrap();
        let b = DateTime::parse("2004-01-01T00:00:00").unwrap();
        assert!(a < b);
        let c = DateTime::parse("2004-01-01T00:00:00.001").unwrap();
        assert!(b < c);
    }

    #[test]
    fn reject_invalid_dates() {
        assert!(DateTime::parse("2004-02-30T00:00:00").is_err());
        assert!(DateTime::parse("2004-13-01T00:00:00").is_err());
        assert!(DateTime::parse("2004-00-01T00:00:00").is_err());
        assert!(DateTime::parse("2004-01-01").is_err()); // no time part
        assert!(DateTime::parse("2004-01-01T25:00:00").is_err());
        assert!(DateTime::parse("2004-01-01T10:61:00").is_err());
        assert!(DateTime::parse("garbage").is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
        assert!(DateTime::parse("2004-02-29T00:00:00").is_ok());
        assert!(DateTime::parse("2003-02-29T00:00:00").is_err());
    }

    #[test]
    fn date_parse_and_order() {
        let a = Date::parse("1993-01-01").unwrap();
        let b = Date::parse("1995-06-30").unwrap();
        assert!(a < b);
        assert_eq!(b.to_string(), "1995-06-30");
        assert!(Date::parse("1995-6-30").is_err());
    }

    #[test]
    fn negative_years_parse() {
        let d = Date::parse("-0044-03-15").unwrap();
        assert_eq!(d.year, -44);
        assert!(d < Date::parse("0001-01-01").unwrap());
    }

    #[test]
    fn epoch_reference_point() {
        // 1970-01-01 is day 0.
        let epoch = DateTime::parse("1970-01-01T00:00:00Z").unwrap();
        assert_eq!(epoch.epoch_seconds(), 0);
        let one_day = DateTime::parse("1970-01-02T00:00:00Z").unwrap();
        assert_eq!(one_day.epoch_seconds(), 86_400);
    }

    #[test]
    fn timezone_out_of_range_rejected() {
        assert!(DateTime::parse("2004-01-01T00:00:00+15:00").is_err());
        assert!(DateTime::parse("2004-01-01T00:00:00+14:30").is_err());
        assert!(DateTime::parse("2004-01-01T00:00:00+14:00").is_ok());
    }
}
