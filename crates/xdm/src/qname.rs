//! Qualified names.
//!
//! The engine supports the paper's queries, which use unprefixed element
//! names plus the `fn:`/`local:`/`xs:` prefixes on functions and types.
//! A [`QName`] stores an optional prefix and a local part; equality and
//! hashing consider both. Strings are reference-counted so cloning a
//! QName (which happens on every constructed element) is two pointer
//! copies.

use std::fmt;
use std::sync::Arc;

/// A qualified name: optional prefix plus local part.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    prefix: Option<Arc<str>>,
    local: Arc<str>,
}

impl QName {
    /// An unprefixed name.
    pub fn local(local: impl Into<Arc<str>>) -> QName {
        QName {
            prefix: None,
            local: local.into(),
        }
    }

    /// A prefixed name such as `local:set-equal`.
    pub fn prefixed(prefix: impl Into<Arc<str>>, local: impl Into<Arc<str>>) -> QName {
        QName {
            prefix: Some(prefix.into()),
            local: local.into(),
        }
    }

    /// Parse a lexical QName (`name` or `prefix:name`).
    pub fn parse(s: &str) -> Option<QName> {
        if s.is_empty() {
            return None;
        }
        match s.split_once(':') {
            Some((p, l)) => {
                if p.is_empty() || l.is_empty() || l.contains(':') {
                    None
                } else if is_ncname(p) && is_ncname(l) {
                    Some(QName::prefixed(p, l))
                } else {
                    None
                }
            }
            None => {
                if is_ncname(s) {
                    Some(QName::local(s))
                } else {
                    None
                }
            }
        }
    }

    /// The prefix, if any.
    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// The local part.
    pub fn local_part(&self) -> &str {
        &self.local
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => f.write_str(&self.local),
        }
    }
}

/// True when `s` is a valid NCName (no-colon name). We accept the XML 1.0
/// name characters restricted to the ASCII subset plus any non-ASCII
/// character, which covers realistic data while staying simple.
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_ncname_start(c) => {}
        _ => return false,
    }
    chars.all(is_ncname_char)
}

/// True when `c` may start an NCName.
pub fn is_ncname_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

/// True when `c` may continue an NCName.
pub fn is_ncname_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.') || !c.is_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_local_and_prefixed() {
        assert_eq!(QName::parse("book"), Some(QName::local("book")));
        assert_eq!(
            QName::parse("local:paths"),
            Some(QName::prefixed("local", "paths"))
        );
        assert_eq!(QName::parse("avg-price"), Some(QName::local("avg-price")));
    }

    #[test]
    fn parse_rejects_bad_names() {
        for s in ["", ":x", "x:", "a:b:c", "1abc", "-a", "a b", ".x"] {
            assert!(QName::parse(s).is_none(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(
            QName::parse("local:cube").unwrap().to_string(),
            "local:cube"
        );
        assert_eq!(QName::parse("title").unwrap().to_string(), "title");
    }

    #[test]
    fn equality_considers_prefix() {
        assert_ne!(QName::parse("fn:avg"), QName::parse("avg"));
        assert_eq!(QName::parse("a:b"), QName::parse("a:b"));
    }

    #[test]
    fn ncname_allows_dots_dashes_not_first() {
        assert!(is_ncname("ship-instruct"));
        assert!(is_ncname("a.b"));
        assert!(is_ncname("_hidden"));
        assert!(!is_ncname("2fast"));
    }
}
