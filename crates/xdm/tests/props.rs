//! Property-style tests for the data-model primitives, driven by a
//! deterministic splitmix64 generator (no external dependencies; every
//! run checks the same cases).

use xqa_xdm::{deep_equal, sort_compare, AtomicValue, CompOp, Date, DateTime, Decimal, Item};

/// Minimal splitmix64 — identical algorithm to `xqa_workload::DetRng`,
/// inlined to keep this crate's dev-dependency graph empty.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[lo, hi)`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

const CASES: usize = 256;

fn small_decimal(rng: &mut Rng) -> Decimal {
    let m = rng.range_i64(-1_000_000_000, 1_000_000_000);
    let s = rng.below(6) as u32;
    Decimal::from_parts(m as i128, s)
}

fn atomic_value(rng: &mut Rng) -> AtomicValue {
    match rng.below(5) {
        0 => AtomicValue::Integer(rng.range_i64(i32::MIN as i64, i32::MAX as i64 + 1)),
        1 => AtomicValue::Decimal(small_decimal(rng)),
        2 => AtomicValue::Double(rng.range_i64(-1_000_000, 1_000_000) as f64 / 7.0),
        3 => {
            let len = rng.below(7) as usize;
            let s: String = (0..len)
                .map(|_| (b'a' + rng.below(26) as u8) as char)
                .collect();
            AtomicValue::string(s)
        }
        _ => AtomicValue::Boolean(rng.below(2) == 0),
    }
}

#[test]
fn decimal_display_parse_roundtrip() {
    let mut rng = Rng(1);
    for _ in 0..CASES {
        let d = small_decimal(&mut rng);
        let back = Decimal::parse(&d.to_string()).unwrap();
        assert_eq!(d, back);
    }
}

#[test]
fn decimal_addition_commutes() {
    let mut rng = Rng(2);
    for _ in 0..CASES {
        let (a, b) = (small_decimal(&mut rng), small_decimal(&mut rng));
        assert_eq!(a.checked_add(&b).unwrap(), b.checked_add(&a).unwrap());
    }
}

#[test]
fn decimal_addition_associates() {
    let mut rng = Rng(3);
    for _ in 0..CASES {
        let (a, b, c) = (
            small_decimal(&mut rng),
            small_decimal(&mut rng),
            small_decimal(&mut rng),
        );
        let left = a.checked_add(&b).unwrap().checked_add(&c).unwrap();
        let right = a.checked_add(&b.checked_add(&c).unwrap()).unwrap();
        assert_eq!(left, right);
    }
}

#[test]
fn decimal_multiplication_commutes() {
    let mut rng = Rng(4);
    for _ in 0..CASES {
        let (a, b) = (small_decimal(&mut rng), small_decimal(&mut rng));
        assert_eq!(a.checked_mul(&b).unwrap(), b.checked_mul(&a).unwrap());
    }
}

#[test]
fn decimal_sub_then_add_roundtrips() {
    let mut rng = Rng(5);
    for _ in 0..CASES {
        let (a, b) = (small_decimal(&mut rng), small_decimal(&mut rng));
        let diff = a.checked_sub(&b).unwrap();
        assert_eq!(diff.checked_add(&b).unwrap(), a);
    }
}

#[test]
fn decimal_floor_ceiling_bracket() {
    let mut rng = Rng(6);
    for _ in 0..CASES {
        let d = small_decimal(&mut rng);
        let floor = d.floor();
        let ceiling = d.ceiling();
        assert!(floor <= d && d <= ceiling);
        assert!(ceiling.checked_sub(&floor).unwrap() <= Decimal::ONE);
        assert!(floor.is_integer() && ceiling.is_integer());
    }
}

#[test]
fn decimal_ordering_is_total_and_consistent() {
    use std::cmp::Ordering;
    let mut rng = Rng(7);
    for _ in 0..CASES {
        let (a, b) = (small_decimal(&mut rng), small_decimal(&mut rng));
        match a.cmp(&b) {
            Ordering::Less => assert!(b > a),
            Ordering::Greater => assert!(b < a),
            Ordering::Equal => assert_eq!(a, b),
        }
        if a < b {
            assert!(a.to_f64() <= b.to_f64() + 1e-9);
        }
    }
}

#[test]
fn decimal_division_inverse_of_multiplication() {
    let mut rng = Rng(8);
    for _ in 0..CASES {
        let (a, b) = (small_decimal(&mut rng), small_decimal(&mut rng));
        if b.is_zero() {
            continue;
        }
        let q = a.checked_mul(&b).unwrap().checked_div(&b).unwrap();
        let diff = q.checked_sub(&a).unwrap().abs();
        assert!(diff.to_f64() < 1e-9, "a={a} b={b} q={q}");
    }
}

#[test]
fn datetime_order_matches_component_order() {
    let mut rng = Rng(9);
    for _ in 0..CASES {
        let mut ymd = || {
            (
                rng.range_i64(1990, 2030) as i32,
                rng.range_i64(1, 13) as u8,
                rng.range_i64(1, 29) as u8,
            )
        };
        let (y1, m1, d1) = ymd();
        let (y2, m2, d2) = ymd();
        let a = DateTime::new(y1, m1, d1, 12, 0, 0, 0, None).unwrap();
        let b = DateTime::new(y2, m2, d2, 12, 0, 0, 0, None).unwrap();
        assert_eq!(a.cmp(&b), (y1, m1, d1).cmp(&(y2, m2, d2)));
    }
}

#[test]
fn datetime_display_parse_roundtrip() {
    let mut rng = Rng(10);
    for _ in 0..CASES {
        let tz = match rng.below(3) {
            0 => None,
            _ => Some(rng.range_i64(-840, 841) as i16),
        };
        let dt = DateTime::new(
            rng.range_i64(1900, 2100) as i32,
            rng.range_i64(1, 13) as u8,
            rng.range_i64(1, 29) as u8,
            rng.range_i64(0, 24) as u8,
            rng.range_i64(0, 60) as u8,
            rng.range_i64(0, 60) as u8,
            0,
            tz,
        )
        .unwrap();
        let parsed = DateTime::parse(&dt.to_string()).unwrap();
        assert_eq!(dt, parsed);
    }
}

#[test]
fn date_roundtrip() {
    let mut rng = Rng(11);
    for _ in 0..CASES {
        let date = Date::new(
            rng.range_i64(1900, 2100) as i32,
            rng.range_i64(1, 13) as u8,
            rng.range_i64(1, 29) as u8,
            None,
        )
        .unwrap();
        assert_eq!(Date::parse(&date.to_string()).unwrap(), date);
    }
}

#[test]
fn deep_equal_is_reflexive() {
    let mut rng = Rng(12);
    for _ in 0..CASES {
        let len = rng.below(8) as usize;
        let seq: Vec<Item> = (0..len)
            .map(|_| Item::Atomic(atomic_value(&mut rng)))
            .collect();
        assert!(deep_equal(&seq, &seq.clone()));
    }
}

#[test]
fn deep_equal_is_symmetric() {
    let mut rng = Rng(13);
    for _ in 0..CASES {
        let seq = |rng: &mut Rng| -> Vec<Item> {
            let len = rng.below(6) as usize;
            (0..len).map(|_| Item::Atomic(atomic_value(rng))).collect()
        };
        let sa = seq(&mut rng);
        let sb = seq(&mut rng);
        assert_eq!(deep_equal(&sa, &sb), deep_equal(&sb, &sa));
    }
}

#[test]
fn sort_compare_is_antisymmetric_within_numeric() {
    let mut rng = Rng(14);
    for _ in 0..CASES {
        let a = rng.range_i64(-1_000_000, 1_000_000) as f64 / 3.0;
        let b = rng.range_i64(-1_000_000, 1_000_000) as f64 / 3.0;
        let va = AtomicValue::Double(a);
        let vb = AtomicValue::Double(b);
        let ab = sort_compare(&va, &vb).unwrap();
        let ba = sort_compare(&vb, &va).unwrap();
        assert_eq!(ab, ba.reverse());
    }
}

#[test]
fn value_compare_eq_agrees_with_ordering() {
    let mut rng = Rng(15);
    for _ in 0..CASES {
        let (a, b) = (small_decimal(&mut rng), small_decimal(&mut rng));
        let va = AtomicValue::Decimal(a);
        let vb = AtomicValue::Decimal(b);
        let eq = xqa_xdm::value_compare(&va, &vb, CompOp::Eq).unwrap();
        assert_eq!(eq, a == b);
        let lt = xqa_xdm::value_compare(&va, &vb, CompOp::Lt).unwrap();
        assert_eq!(lt, a < b);
    }
}
