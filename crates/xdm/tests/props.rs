//! Property-based tests for the data-model primitives.

use proptest::prelude::*;
use xqa_xdm::{
    deep_equal, sort_compare, AtomicValue, CompOp, Date, DateTime, Decimal, Item,
};

/// A strategy for decimals with bounded mantissas (avoids overflow so
/// algebraic laws hold exactly).
fn small_decimal() -> impl Strategy<Value = Decimal> {
    (-1_000_000_000i64..1_000_000_000, 0u32..6)
        .prop_map(|(m, s)| Decimal::from_parts(m as i128, s))
}

fn atomic_value() -> impl Strategy<Value = AtomicValue> {
    prop_oneof![
        any::<i32>().prop_map(|v| AtomicValue::Integer(v as i64)),
        small_decimal().prop_map(AtomicValue::Decimal),
        (-1.0e6f64..1.0e6).prop_map(AtomicValue::Double),
        "[a-z]{0,6}".prop_map(AtomicValue::string),
        any::<bool>().prop_map(AtomicValue::Boolean),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decimal_display_parse_roundtrip(d in small_decimal()) {
        let s = d.to_string();
        let back = Decimal::parse(&s).unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn decimal_addition_commutes(a in small_decimal(), b in small_decimal()) {
        prop_assert_eq!(a.checked_add(&b).unwrap(), b.checked_add(&a).unwrap());
    }

    #[test]
    fn decimal_addition_associates(a in small_decimal(), b in small_decimal(), c in small_decimal()) {
        let left = a.checked_add(&b).unwrap().checked_add(&c).unwrap();
        let right = a.checked_add(&b.checked_add(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn decimal_multiplication_commutes(a in small_decimal(), b in small_decimal()) {
        prop_assert_eq!(a.checked_mul(&b).unwrap(), b.checked_mul(&a).unwrap());
    }

    #[test]
    fn decimal_sub_then_add_roundtrips(a in small_decimal(), b in small_decimal()) {
        let diff = a.checked_sub(&b).unwrap();
        prop_assert_eq!(diff.checked_add(&b).unwrap(), a);
    }

    #[test]
    fn decimal_floor_ceiling_bracket(d in small_decimal()) {
        let floor = d.floor();
        let ceiling = d.ceiling();
        prop_assert!(floor <= d && d <= ceiling);
        prop_assert!(ceiling.checked_sub(&floor).unwrap() <= Decimal::ONE);
        prop_assert!(floor.is_integer() && ceiling.is_integer());
    }

    #[test]
    fn decimal_ordering_is_total_and_consistent(a in small_decimal(), b in small_decimal()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert!(b > a),
            Ordering::Greater => prop_assert!(b < a),
            Ordering::Equal => prop_assert_eq!(a, b),
        }
        // Consistent with the f64 image (within float tolerance).
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64() + 1e-9);
        }
    }

    #[test]
    fn decimal_division_inverse_of_multiplication(a in small_decimal(), b in small_decimal()) {
        prop_assume!(!b.is_zero());
        let q = a.checked_mul(&b).unwrap().checked_div(&b).unwrap();
        // Exact when representable within MAX_SCALE digits.
        let diff = q.checked_sub(&a).unwrap().abs();
        prop_assert!(diff.to_f64() < 1e-9, "a={a} b={b} q={q}");
    }

    #[test]
    fn datetime_order_matches_component_order(
        y1 in 1990i32..2030, m1 in 1u8..=12, d1 in 1u8..=28,
        y2 in 1990i32..2030, m2 in 1u8..=12, d2 in 1u8..=28,
    ) {
        let a = DateTime::new(y1, m1, d1, 12, 0, 0, 0, None).unwrap();
        let b = DateTime::new(y2, m2, d2, 12, 0, 0, 0, None).unwrap();
        prop_assert_eq!(a.cmp(&b), (y1, m1, d1).cmp(&(y2, m2, d2)));
    }

    #[test]
    fn datetime_display_parse_roundtrip(
        y in 1900i32..2100, m in 1u8..=12, d in 1u8..=28,
        h in 0u8..24, min in 0u8..60, s in 0u8..60,
        tz in prop_oneof![Just(None), (-840i16..=840).prop_map(Some)],
    ) {
        let dt = DateTime::new(y, m, d, h, min, s, 0, tz).unwrap();
        let parsed = DateTime::parse(&dt.to_string()).unwrap();
        prop_assert_eq!(dt, parsed);
    }

    #[test]
    fn date_roundtrip(y in 1900i32..2100, m in 1u8..=12, d in 1u8..=28) {
        let date = Date::new(y, m, d, None).unwrap();
        prop_assert_eq!(Date::parse(&date.to_string()).unwrap(), date);
    }

    #[test]
    fn deep_equal_is_reflexive(values in proptest::collection::vec(atomic_value(), 0..8)) {
        let seq: Vec<Item> = values.into_iter().map(Item::Atomic).collect();
        prop_assert!(deep_equal(&seq, &seq.clone()));
    }

    #[test]
    fn deep_equal_is_symmetric(
        a in proptest::collection::vec(atomic_value(), 0..6),
        b in proptest::collection::vec(atomic_value(), 0..6),
    ) {
        let sa: Vec<Item> = a.into_iter().map(Item::Atomic).collect();
        let sb: Vec<Item> = b.into_iter().map(Item::Atomic).collect();
        prop_assert_eq!(deep_equal(&sa, &sb), deep_equal(&sb, &sa));
    }

    #[test]
    fn sort_compare_is_antisymmetric_within_numeric(
        a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6,
    ) {
        let va = AtomicValue::Double(a);
        let vb = AtomicValue::Double(b);
        let ab = sort_compare(&va, &vb).unwrap();
        let ba = sort_compare(&vb, &va).unwrap();
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn value_compare_eq_agrees_with_ordering(a in small_decimal(), b in small_decimal()) {
        let va = AtomicValue::Decimal(a);
        let vb = AtomicValue::Decimal(b);
        let eq = xqa_xdm::value_compare(&va, &vb, CompOp::Eq).unwrap();
        prop_assert_eq!(eq, a == b);
        let lt = xqa_xdm::value_compare(&va, &vb, CompOp::Lt).unwrap();
        prop_assert_eq!(lt, a < b);
    }
}
